"""Tag summarisation substrate.

Section 2.1.2 of the paper proposes a two-step treatment of the tag
dimension: first summarise a group's tags into a *group tag signature*
(a weighted vector over topic categories), then compare signatures with
a vector distance.  The paper names three summarisation options --
plain frequency, tf*idf and Latent Dirichlet Allocation -- and evaluates
with LDA over ``d = 25`` topics.  This package implements all three from
scratch on numpy:

* :mod:`repro.text.tokenize` -- tag normalisation utilities.
* :mod:`repro.text.tfidf` -- a tf*idf vectoriser over tag multisets.
* :mod:`repro.text.lda` -- collapsed-Gibbs Latent Dirichlet Allocation.
* :mod:`repro.text.topics` -- the :class:`TopicModel` interface used by
  the core signature builder, with frequency / tf*idf / LDA backends and
  a small synonym folding table (the paper's WordNet enhancement).
* :mod:`repro.text.tagcloud` -- frequency tag clouds (Figures 1 and 2).
"""

from repro.text.tokenize import normalize_tag, normalize_tags, tag_counts
from repro.text.tfidf import TfIdfVectorizer
from repro.text.lda import LatentDirichletAllocation, LdaResult
from repro.text.topics import (
    TopicModel,
    FrequencyTopicModel,
    TfIdfTopicModel,
    LdaTopicModel,
    SynonymFolder,
    build_topic_model,
)
from repro.text.tagcloud import TagCloud, build_tag_cloud, render_tag_cloud

__all__ = [
    "normalize_tag",
    "normalize_tags",
    "tag_counts",
    "TfIdfVectorizer",
    "LatentDirichletAllocation",
    "LdaResult",
    "TopicModel",
    "FrequencyTopicModel",
    "TfIdfTopicModel",
    "LdaTopicModel",
    "SynonymFolder",
    "build_topic_model",
    "TagCloud",
    "build_tag_cloud",
    "render_tag_cloud",
]
