"""Latent Dirichlet Allocation with collapsed Gibbs sampling.

The paper uses LDA (Blei, Ng & Jordan 2003) to summarise a tagging-action
group's long-tailed tag multiset into a ``d = 25`` dimensional topic
distribution, which then becomes the group's tag signature vector
(Sections 2.1.2 and 6).  This module implements LDA from scratch on
numpy:

* :class:`LatentDirichletAllocation` -- train with collapsed Gibbs
  sampling over integer token streams, expose the topic-word matrix
  ``phi`` and document-topic matrix ``theta``;
* fold-in inference (:meth:`LatentDirichletAllocation.infer`) for new
  documents, which is what the TagDM pipeline uses to produce a topic
  distribution per tagging-action group after fitting the model on the
  full corpus.

The implementation keeps the vocabulary external: callers pass documents
as lists of string tokens; the model builds a token <-> id mapping during
``fit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LatentDirichletAllocation", "LdaResult"]


@dataclass
class LdaResult:
    """Training summary returned by :meth:`LatentDirichletAllocation.fit`."""

    n_documents: int
    n_tokens: int
    vocabulary_size: int
    n_topics: int
    iterations_run: int
    log_likelihood_trace: List[float]

    @property
    def final_log_likelihood(self) -> float:
        """The last recorded joint log likelihood (higher is better)."""
        if not self.log_likelihood_trace:
            return float("nan")
        return self.log_likelihood_trace[-1]


class LatentDirichletAllocation:
    """Collapsed Gibbs sampling LDA over tag documents.

    Parameters
    ----------
    n_topics:
        Number of latent topics ``d`` (the paper uses 25).
    alpha:
        Symmetric Dirichlet prior on document-topic distributions.
        Defaults to ``50 / n_topics`` which is the common heuristic.
    beta:
        Symmetric Dirichlet prior on topic-word distributions.
    n_iterations:
        Gibbs sweeps over the corpus during :meth:`fit`.
    burn_in:
        Sweeps ignored before averaging ``theta`` / ``phi`` estimates.
    seed:
        Seed of the internal random generator (training is deterministic
        given the seed and the input order).
    """

    def __init__(
        self,
        n_topics: int = 25,
        alpha: Optional[float] = None,
        beta: float = 0.01,
        n_iterations: int = 200,
        burn_in: int = 50,
        seed: int = 0,
    ) -> None:
        if n_topics <= 1:
            raise ValueError("n_topics must be at least 2")
        if n_iterations <= 0:
            raise ValueError("n_iterations must be positive")
        if burn_in < 0 or burn_in >= n_iterations:
            raise ValueError("burn_in must satisfy 0 <= burn_in < n_iterations")
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.n_topics = n_topics
        self.alpha = alpha if alpha is not None else 50.0 / n_topics
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        self.beta = beta
        self.n_iterations = n_iterations
        self.burn_in = burn_in
        self.seed = seed

        self.vocabulary_: Dict[str, int] = {}
        self.topic_word_: Optional[np.ndarray] = None  # phi, (n_topics, V)
        self.doc_topic_: Optional[np.ndarray] = None  # theta, (D, n_topics)
        self.result_: Optional[LdaResult] = None
        self._topic_word_counts: Optional[np.ndarray] = None
        self._topic_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Vocabulary handling
    # ------------------------------------------------------------------
    def _encode_corpus(
        self, documents: Sequence[Iterable[str]], extend_vocabulary: bool
    ) -> List[np.ndarray]:
        encoded: List[np.ndarray] = []
        for document in documents:
            token_ids: List[int] = []
            for token in document:
                token = str(token)
                token_id = self.vocabulary_.get(token)
                if token_id is None:
                    if not extend_vocabulary:
                        continue  # unseen tokens are skipped at inference time
                    token_id = len(self.vocabulary_)
                    self.vocabulary_[token] = token_id
                token_ids.append(token_id)
            encoded.append(np.asarray(token_ids, dtype=np.int64))
        return encoded

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens seen during :meth:`fit`."""
        return len(self.vocabulary_)

    def feature_names(self) -> List[str]:
        """Return tokens ordered by their internal ids."""
        ordered = sorted(self.vocabulary_.items(), key=lambda pair: pair[1])
        return [token for token, _ in ordered]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, documents: Sequence[Iterable[str]]) -> LdaResult:
        """Run collapsed Gibbs sampling over ``documents``.

        Returns an :class:`LdaResult` summary; the fitted ``phi`` /
        ``theta`` matrices are available as :attr:`topic_word_` and
        :attr:`doc_topic_` afterwards.
        """
        corpus = self._encode_corpus(documents, extend_vocabulary=True)
        if not corpus:
            raise ValueError("cannot fit LDA on zero documents")
        vocab_size = self.vocabulary_size
        if vocab_size == 0:
            raise ValueError("cannot fit LDA on documents with no tokens")

        rng = np.random.default_rng(self.seed)
        n_docs = len(corpus)
        K = self.n_topics

        doc_topic_counts = np.zeros((n_docs, K), dtype=np.int64)
        topic_word_counts = np.zeros((K, vocab_size), dtype=np.int64)
        topic_counts = np.zeros(K, dtype=np.int64)
        assignments: List[np.ndarray] = []

        # Random initialisation of topic assignments.
        for doc_index, tokens in enumerate(corpus):
            topics = rng.integers(0, K, size=len(tokens))
            assignments.append(topics)
            for token_id, topic in zip(tokens, topics):
                doc_topic_counts[doc_index, topic] += 1
                topic_word_counts[topic, token_id] += 1
                topic_counts[topic] += 1

        alpha, beta = self.alpha, self.beta
        beta_sum = beta * vocab_size
        theta_accumulator = np.zeros((n_docs, K), dtype=float)
        phi_accumulator = np.zeros((K, vocab_size), dtype=float)
        samples_kept = 0
        log_likelihoods: List[float] = []

        for iteration in range(self.n_iterations):
            for doc_index, tokens in enumerate(corpus):
                topics = assignments[doc_index]
                doc_counts = doc_topic_counts[doc_index]
                for position in range(len(tokens)):
                    token_id = tokens[position]
                    old_topic = topics[position]

                    doc_counts[old_topic] -= 1
                    topic_word_counts[old_topic, token_id] -= 1
                    topic_counts[old_topic] -= 1

                    weights = (
                        (doc_counts + alpha)
                        * (topic_word_counts[:, token_id] + beta)
                        / (topic_counts + beta_sum)
                    )
                    total = weights.sum()
                    new_topic = int(
                        np.searchsorted(np.cumsum(weights), rng.random() * total)
                    )
                    if new_topic >= K:  # numerical guard
                        new_topic = K - 1

                    topics[position] = new_topic
                    doc_counts[new_topic] += 1
                    topic_word_counts[new_topic, token_id] += 1
                    topic_counts[new_topic] += 1

            if iteration >= self.burn_in:
                theta_accumulator += doc_topic_counts + alpha
                phi_accumulator += topic_word_counts + beta
                samples_kept += 1

            if iteration % 10 == 0 or iteration == self.n_iterations - 1:
                log_likelihoods.append(
                    self._joint_log_likelihood(
                        doc_topic_counts, topic_word_counts, topic_counts
                    )
                )

        theta = theta_accumulator / samples_kept
        theta /= theta.sum(axis=1, keepdims=True)
        phi = phi_accumulator / samples_kept
        phi /= phi.sum(axis=1, keepdims=True)

        self.doc_topic_ = theta
        self.topic_word_ = phi
        self._topic_word_counts = topic_word_counts
        self._topic_counts = topic_counts
        self.result_ = LdaResult(
            n_documents=n_docs,
            n_tokens=int(sum(len(tokens) for tokens in corpus)),
            vocabulary_size=vocab_size,
            n_topics=K,
            iterations_run=self.n_iterations,
            log_likelihood_trace=log_likelihoods,
        )
        return self.result_

    def _joint_log_likelihood(
        self,
        doc_topic_counts: np.ndarray,
        topic_word_counts: np.ndarray,
        topic_counts: np.ndarray,
    ) -> float:
        """Compute an (unnormalised) joint log likelihood for monitoring."""
        from scipy.special import gammaln

        vocab_size = topic_word_counts.shape[1]
        alpha, beta = self.alpha, self.beta
        # p(w | z)
        likelihood = float(
            np.sum(gammaln(topic_word_counts + beta))
            - np.sum(gammaln(topic_counts + beta * vocab_size))
        )
        likelihood += self.n_topics * float(
            gammaln(beta * vocab_size) - vocab_size * gammaln(beta)
        )
        # p(z)
        doc_totals = doc_topic_counts.sum(axis=1)
        likelihood += float(
            np.sum(gammaln(doc_topic_counts + alpha))
            - np.sum(gammaln(doc_totals + alpha * self.n_topics))
        )
        likelihood += doc_topic_counts.shape[0] * float(
            gammaln(alpha * self.n_topics) - self.n_topics * gammaln(alpha)
        )
        return likelihood

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def infer(
        self,
        document: Iterable[str],
        n_iterations: int = 50,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Fold a new document in and return its topic distribution.

        Unseen tokens are ignored.  A document with no known tokens maps
        to the uniform distribution, which keeps downstream cosine
        comparisons well-defined.
        """
        if self.topic_word_ is None or self._topic_word_counts is None:
            raise RuntimeError("LDA model must be fitted before inference")
        tokens = [
            self.vocabulary_[token]
            for token in (str(t) for t in document)
            if token in self.vocabulary_
        ]
        K = self.n_topics
        if not tokens:
            return np.full(K, 1.0 / K)

        rng = np.random.default_rng(self.seed if seed is None else seed)
        token_array = np.asarray(tokens, dtype=np.int64)
        topics = rng.integers(0, K, size=len(token_array))
        doc_counts = np.bincount(topics, minlength=K).astype(np.int64)

        alpha, beta = self.alpha, self.beta
        vocab_size = self.vocabulary_size
        beta_sum = beta * vocab_size
        word_counts = self._topic_word_counts
        topic_counts = self._topic_counts
        assert topic_counts is not None

        accumulator = np.zeros(K, dtype=float)
        burn_in = max(1, n_iterations // 2)
        for iteration in range(n_iterations):
            for position in range(len(token_array)):
                token_id = token_array[position]
                old_topic = topics[position]
                doc_counts[old_topic] -= 1
                weights = (
                    (doc_counts + alpha)
                    * (word_counts[:, token_id] + beta)
                    / (topic_counts + beta_sum)
                )
                total = weights.sum()
                new_topic = int(
                    np.searchsorted(np.cumsum(weights), rng.random() * total)
                )
                if new_topic >= K:
                    new_topic = K - 1
                topics[position] = new_topic
                doc_counts[new_topic] += 1
            if iteration >= burn_in:
                accumulator += doc_counts + alpha

        distribution = accumulator / accumulator.sum()
        return distribution

    def transform(
        self,
        documents: Sequence[Iterable[str]],
        n_iterations: int = 50,
    ) -> np.ndarray:
        """Infer topic distributions for a batch of documents."""
        rows = [
            self.infer(document, n_iterations=n_iterations, seed=self.seed + index)
            for index, document in enumerate(documents)
        ]
        return np.vstack(rows) if rows else np.zeros((0, self.n_topics))

    def top_words(self, topic: int, n: int = 10) -> List[Tuple[str, float]]:
        """Return the ``n`` most probable tokens of ``topic`` with weights."""
        if self.topic_word_ is None:
            raise RuntimeError("LDA model must be fitted before inspecting topics")
        if topic < 0 or topic >= self.n_topics:
            raise IndexError(f"topic {topic} out of range")
        names = self.feature_names()
        weights = self.topic_word_[topic]
        order = np.argsort(weights)[::-1][:n]
        return [(names[i], float(weights[i])) for i in order]
