"""Frequency tag clouds (Figures 1 and 2 of the paper).

Figures 1 and 2 render the tag signature of Woody Allen movies -- once
for all users and once for California users only -- as frequency-scaled
tag clouds.  This module builds the same artefact from any collection of
tags: a ranked list of ``(tag, count, relative size)`` entries plus a
plain-text rendering where font size is emulated by repeating the tag's
display weight, so the clouds can be compared in a terminal, a test or a
benchmark report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.text.tokenize import normalize_tags

__all__ = ["TagCloudEntry", "TagCloud", "build_tag_cloud", "render_tag_cloud"]


@dataclass(frozen=True)
class TagCloudEntry:
    """One tag in a cloud: token, raw count and relative size in [0, 1]."""

    tag: str
    count: int
    size: float


@dataclass
class TagCloud:
    """A ranked frequency tag cloud."""

    title: str
    entries: List[TagCloudEntry]

    def tags(self) -> List[str]:
        """Return the tags in rank order."""
        return [entry.tag for entry in self.entries]

    def counts(self) -> Dict[str, int]:
        """Return ``tag -> count`` for every entry."""
        return {entry.tag: entry.count for entry in self.entries}

    def top(self, n: int) -> List[TagCloudEntry]:
        """Return the ``n`` largest entries."""
        return self.entries[:n]

    def overlap(self, other: "TagCloud", n: Optional[int] = None) -> List[str]:
        """Tags present in both clouds (optionally restricted to top-n)."""
        mine = self.tags() if n is None else self.tags()[:n]
        theirs = set(other.tags() if n is None else other.tags()[:n])
        return [tag for tag in mine if tag in theirs]

    def difference(self, other: "TagCloud", n: Optional[int] = None) -> List[str]:
        """Tags prominent here but absent from the other cloud.

        This is the comparison the paper draws between Figures 1 and 2
        (e.g. *Noiva Nervosa* is prominent for all users yet absent for
        California users).
        """
        mine = self.tags() if n is None else self.tags()[:n]
        theirs = set(other.tags() if n is None else other.tags()[:n])
        return [tag for tag in mine if tag not in theirs]


def build_tag_cloud(
    tags: Iterable[str],
    title: str = "tag cloud",
    max_tags: int = 30,
    normalize: bool = True,
) -> TagCloud:
    """Build a frequency tag cloud from an iterable of tag tokens."""
    if max_tags <= 0:
        raise ValueError("max_tags must be positive")
    tokens = normalize_tags(tags) if normalize else [str(tag) for tag in tags]
    counts = Counter(tokens)
    ranked = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))[:max_tags]
    if not ranked:
        return TagCloud(title=title, entries=[])
    max_count = ranked[0][1]
    entries = [
        TagCloudEntry(tag=tag, count=count, size=count / max_count)
        for tag, count in ranked
    ]
    return TagCloud(title=title, entries=entries)


_SIZE_BANDS: Sequence[Tuple[float, str]] = (
    (0.8, "####"),
    (0.6, "###"),
    (0.4, "##"),
    (0.2, "#"),
    (0.0, ""),
)


def _band(size: float) -> str:
    for threshold, marker in _SIZE_BANDS:
        if size >= threshold:
            return marker
    return ""


def render_tag_cloud(cloud: TagCloud, columns: int = 4) -> str:
    """Render a tag cloud as plain text.

    Each tag is annotated with a ``#`` band that emulates font size
    (``####`` = largest).  Tags are laid out row-major in ``columns``
    columns.
    """
    if columns <= 0:
        raise ValueError("columns must be positive")
    lines = [f"== {cloud.title} =="]
    if not cloud.entries:
        lines.append("(no tags)")
        return "\n".join(lines)
    cells = [
        f"{entry.tag}({entry.count}){_band(entry.size)}" for entry in cloud.entries
    ]
    width = max(len(cell) for cell in cells) + 2
    for start in range(0, len(cells), columns):
        row = cells[start:start + columns]
        lines.append("".join(cell.ljust(width) for cell in row).rstrip())
    return "\n".join(lines)
