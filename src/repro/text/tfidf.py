"""A tf*idf vectoriser over tag multisets.

The paper cites Salton & Buckley's term weighting as one of the
summarisation options for group tag signatures (Section 2.1.2).  The
vectoriser below treats each tagging-action group's tag multiset as a
document, builds the vocabulary on ``fit``, and produces dense numpy
vectors with the classic ``tf * log((1 + N) / (1 + df)) + 1`` smoothed
idf weighting followed by optional L2 normalisation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.text.tokenize import normalize_tags

__all__ = ["TfIdfVectorizer"]


class TfIdfVectorizer:
    """Fit/transform tf*idf vectors for tag documents.

    Parameters
    ----------
    max_features:
        Keep only the ``max_features`` most frequent tags (by document
        frequency); ``None`` keeps everything.
    sublinear_tf:
        Use ``1 + log(tf)`` instead of raw term frequency.
    normalize:
        L2-normalise the output vectors (recommended when the vectors
        feed cosine-similarity comparisons, which is the TagDM default).
    lowercase:
        Run tag normalisation before counting.
    """

    def __init__(
        self,
        max_features: Optional[int] = None,
        sublinear_tf: bool = True,
        normalize: bool = True,
        lowercase: bool = True,
    ) -> None:
        if max_features is not None and max_features <= 0:
            raise ValueError("max_features must be positive or None")
        self.max_features = max_features
        self.sublinear_tf = sublinear_tf
        self.normalize = normalize
        self.lowercase = lowercase
        self.vocabulary_: Dict[str, int] = {}
        self.idf_: Optional[np.ndarray] = None
        self._n_documents = 0

    # ------------------------------------------------------------------
    def _prepare(self, document: Iterable[str]) -> List[str]:
        tokens = list(document)
        if self.lowercase:
            tokens = normalize_tags(tokens)
        else:
            tokens = [str(token) for token in tokens]
        return tokens

    @property
    def n_features(self) -> int:
        """Dimensionality of the fitted vector space."""
        return len(self.vocabulary_)

    def fit(self, documents: Sequence[Iterable[str]]) -> "TfIdfVectorizer":
        """Learn the vocabulary and idf weights from tag documents."""
        if not documents:
            raise ValueError("cannot fit a TfIdfVectorizer on zero documents")
        document_frequency: Counter = Counter()
        prepared = [self._prepare(document) for document in documents]
        for tokens in prepared:
            document_frequency.update(set(tokens))

        ranked = sorted(
            document_frequency.items(), key=lambda pair: (-pair[1], pair[0])
        )
        if self.max_features is not None:
            ranked = ranked[: self.max_features]
        self.vocabulary_ = {token: index for index, (token, _) in enumerate(ranked)}

        self._n_documents = len(prepared)
        df = np.array(
            [document_frequency[token] for token in self.vocabulary_], dtype=float
        )
        self.idf_ = np.log((1.0 + self._n_documents) / (1.0 + df)) + 1.0
        return self

    def transform(self, documents: Sequence[Iterable[str]]) -> np.ndarray:
        """Transform tag documents into a dense ``(n, n_features)`` matrix."""
        if self.idf_ is None:
            raise RuntimeError("TfIdfVectorizer must be fitted before transform")
        matrix = np.zeros((len(documents), self.n_features), dtype=float)
        for row, document in enumerate(documents):
            tokens = self._prepare(document)
            counts = Counter(token for token in tokens if token in self.vocabulary_)
            for token, count in counts.items():
                column = self.vocabulary_[token]
                tf = 1.0 + np.log(count) if self.sublinear_tf else float(count)
                matrix[row, column] = tf * self.idf_[column]
        if self.normalize:
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            np.divide(matrix, norms, out=matrix, where=norms > 0)
        return matrix

    def fit_transform(self, documents: Sequence[Iterable[str]]) -> np.ndarray:
        """Fit the vocabulary and return the transformed matrix."""
        return self.fit(documents).transform(documents)

    def feature_names(self) -> List[str]:
        """Return the vocabulary in column order."""
        ordered = sorted(self.vocabulary_.items(), key=lambda pair: pair[1])
        return [token for token, _ in ordered]
