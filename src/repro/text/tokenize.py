"""Tag normalisation utilities.

Collaborative tagging sites let users type free-form tags, so the same
concept shows up as ``Sci-Fi``, ``sci fi`` or ``SCIFI``.  The TagDM
pipeline normalises tags before counting them; the rules are deliberately
conservative (lower-casing, whitespace/punctuation folding) so that
distinct concepts are never merged.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List

__all__ = ["normalize_tag", "normalize_tags", "tag_counts"]

_WHITESPACE = re.compile(r"\s+")
_DISALLOWED = re.compile(r"[^a-z0-9\- ]+")


def normalize_tag(tag: str) -> str:
    """Normalise a single tag token.

    Lower-cases, strips characters outside ``[a-z0-9- ]`` and folds runs
    of whitespace into single hyphens, so ``"Sci  Fi!"`` becomes
    ``"sci-fi"``.  Returns the empty string if nothing survives.
    """
    lowered = str(tag).strip().lower()
    cleaned = _DISALLOWED.sub("", lowered)
    collapsed = _WHITESPACE.sub(" ", cleaned).strip()
    return collapsed.replace(" ", "-")


def normalize_tags(tags: Iterable[str]) -> List[str]:
    """Normalise a tag list, dropping tags that normalise to nothing."""
    normalised = (normalize_tag(tag) for tag in tags)
    return [tag for tag in normalised if tag]


def tag_counts(tags: Iterable[str], normalize: bool = True) -> Dict[str, int]:
    """Count tag occurrences, optionally normalising first."""
    tokens = normalize_tags(tags) if normalize else [str(t) for t in tags]
    return dict(Counter(tokens))
