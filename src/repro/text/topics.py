"""Topic-model backends used for group tag signatures.

The TagDM core asks one question of the text substrate: *given the tag
multiset of a tagging-action group, produce a fixed-length weight vector
over topic categories* (the group tag signature of Section 2.1.2).  The
:class:`TopicModel` interface captures exactly that.  Three backends are
provided, matching the options the paper lists:

* :class:`FrequencyTopicModel` -- the "editor-picked tags" case: every
  frequent tag is its own topic category, weights are frequencies.
* :class:`TfIdfTopicModel` -- tf*idf weights over the most discriminative
  tags.
* :class:`LdaTopicModel` -- the paper's evaluated configuration: LDA with
  ``d`` topics fitted on the whole corpus, inference per group.

A small :class:`SynonymFolder` implements the WordNet-style enhancement
the paper mentions (folding synonymous tags onto a canonical token)
without any external resource.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.text.lda import LatentDirichletAllocation
from repro.text.tfidf import TfIdfVectorizer
from repro.text.tokenize import normalize_tags

__all__ = [
    "SynonymFolder",
    "TopicModel",
    "FrequencyTopicModel",
    "TfIdfTopicModel",
    "LdaTopicModel",
    "build_topic_model",
]

# A compact built-in synonym table covering common tagging vocabulary.
DEFAULT_SYNONYMS: Dict[str, str] = {
    "sci-fi": "science-fiction",
    "scifi": "science-fiction",
    "funny": "comedy",
    "hilarious": "comedy",
    "scary": "horror",
    "frightening": "horror",
    "romantic": "romance",
    "gory": "violence",
    "violent": "violence",
    "classic-movie": "classic",
    "must-see": "favorite",
    "favourite": "favorite",
}


class SynonymFolder:
    """Fold synonymous tags onto canonical tokens.

    This is the lightweight stand-in for the WordNet enhancement in
    Section 2.1.2; callers can extend the table with domain-specific
    synonym pairs.
    """

    def __init__(self, synonyms: Optional[Mapping[str, str]] = None) -> None:
        table = dict(DEFAULT_SYNONYMS)
        if synonyms:
            table.update({str(k): str(v) for k, v in synonyms.items()})
        self._table = table

    def canonical(self, tag: str) -> str:
        """Return the canonical form of ``tag`` (identity if unmapped)."""
        return self._table.get(tag, tag)

    def fold(self, tags: Iterable[str]) -> List[str]:
        """Map every tag in ``tags`` onto its canonical form."""
        return [self.canonical(tag) for tag in tags]

    def add(self, tag: str, canonical: str) -> None:
        """Register an additional synonym pair."""
        self._table[str(tag)] = str(canonical)


class TopicModel(ABC):
    """Interface: summarise tag multisets into fixed-length weight vectors."""

    #: Human-readable backend name (used in reports and ablation benches).
    name: str = "topic-model"

    def __init__(self, synonym_folder: Optional[SynonymFolder] = None) -> None:
        self._synonyms = synonym_folder

    def _prepare(self, tags: Iterable[str]) -> List[str]:
        tokens = normalize_tags(tags)
        if self._synonyms is not None:
            tokens = self._synonyms.fold(tokens)
        return tokens

    @property
    @abstractmethod
    def n_dimensions(self) -> int:
        """Length of the produced signature vectors."""

    @abstractmethod
    def fit(self, documents: Sequence[Iterable[str]]) -> "TopicModel":
        """Fit the backend on the corpus of tag documents."""

    @abstractmethod
    def vectorize(self, tags: Iterable[str]) -> np.ndarray:
        """Produce the signature vector of one tag multiset."""

    @abstractmethod
    def dimension_labels(self) -> List[str]:
        """Human-readable label of each vector dimension."""

    def vectorize_many(self, documents: Sequence[Iterable[str]]) -> np.ndarray:
        """Vectorise a batch of tag multisets into an ``(n, d)`` matrix.

        The base implementation loops over :meth:`vectorize`; backends
        with a cheaper batch path (frequency counting, tf*idf transform)
        override this to build the whole matrix in one shot.  Results are
        identical to the per-document path either way.
        """
        if not documents:
            return np.zeros((0, self.n_dimensions))
        return np.vstack([self.vectorize(document) for document in documents])


class FrequencyTopicModel(TopicModel):
    """Frequency signature over the globally most frequent tags.

    ``T_rep(g) = {(t, freq(t))}`` restricted to the top ``n_dimensions``
    tags of the corpus, L1-normalised so groups of different sizes remain
    comparable.
    """

    name = "frequency"

    def __init__(
        self,
        n_dimensions: int = 25,
        synonym_folder: Optional[SynonymFolder] = None,
    ) -> None:
        super().__init__(synonym_folder)
        if n_dimensions <= 0:
            raise ValueError("n_dimensions must be positive")
        self._n_dimensions = n_dimensions
        self._vocabulary: Dict[str, int] = {}

    @property
    def n_dimensions(self) -> int:
        return self._n_dimensions

    def fit(self, documents: Sequence[Iterable[str]]) -> "FrequencyTopicModel":
        counts: Counter = Counter()
        for document in documents:
            counts.update(self._prepare(document))
        ranked = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
        top = ranked[: self._n_dimensions]
        self._vocabulary = {token: index for index, (token, _) in enumerate(top)}
        return self

    def vectorize(self, tags: Iterable[str]) -> np.ndarray:
        if not self._vocabulary:
            raise RuntimeError("FrequencyTopicModel must be fitted before use")
        vector = np.zeros(self._n_dimensions, dtype=float)
        for token in self._prepare(tags):
            index = self._vocabulary.get(token)
            if index is not None:
                vector[index] += 1.0
        total = vector.sum()
        if total > 0:
            vector /= total
        return vector

    def vectorize_many(self, documents: Sequence[Iterable[str]]) -> np.ndarray:
        """Batch counting: one scatter-add and one normalisation pass."""
        if not self._vocabulary:
            raise RuntimeError("FrequencyTopicModel must be fitted before use")
        if not documents:
            return np.zeros((0, self._n_dimensions))
        rows: List[int] = []
        columns: List[int] = []
        for row, document in enumerate(documents):
            for token in self._prepare(document):
                index = self._vocabulary.get(token)
                if index is not None:
                    rows.append(row)
                    columns.append(index)
        matrix = np.zeros((len(documents), self._n_dimensions), dtype=float)
        if rows:
            np.add.at(matrix, (rows, columns), 1.0)
        totals = matrix.sum(axis=1, keepdims=True)
        np.divide(matrix, totals, out=matrix, where=totals > 0)
        return matrix

    def dimension_labels(self) -> List[str]:
        ordered = sorted(self._vocabulary.items(), key=lambda pair: pair[1])
        labels = [token for token, _ in ordered]
        # Pad if fewer distinct tags than dimensions were seen.
        while len(labels) < self._n_dimensions:
            labels.append(f"<unused-{len(labels)}>")
        return labels


class TfIdfTopicModel(TopicModel):
    """tf*idf signature over the most discriminative tags."""

    name = "tfidf"

    def __init__(
        self,
        n_dimensions: int = 25,
        synonym_folder: Optional[SynonymFolder] = None,
    ) -> None:
        super().__init__(synonym_folder)
        if n_dimensions <= 0:
            raise ValueError("n_dimensions must be positive")
        self._n_dimensions = n_dimensions
        self._vectorizer = TfIdfVectorizer(max_features=n_dimensions, lowercase=False)

    @property
    def n_dimensions(self) -> int:
        return self._n_dimensions

    def fit(self, documents: Sequence[Iterable[str]]) -> "TfIdfTopicModel":
        prepared = [self._prepare(document) for document in documents]
        self._vectorizer.fit(prepared)
        return self

    def vectorize(self, tags: Iterable[str]) -> np.ndarray:
        vector = self._vectorizer.transform([self._prepare(tags)])[0]
        if vector.shape[0] < self._n_dimensions:
            vector = np.pad(vector, (0, self._n_dimensions - vector.shape[0]))
        return vector

    def vectorize_many(self, documents: Sequence[Iterable[str]]) -> np.ndarray:
        """Batch tf*idf: one transform call over all documents.

        ``transform`` weighs and normalises rows independently, so this
        matches the per-document :meth:`vectorize` output exactly.
        """
        if not documents:
            return np.zeros((0, self._n_dimensions))
        matrix = self._vectorizer.transform(
            [self._prepare(document) for document in documents]
        )
        if matrix.shape[1] < self._n_dimensions:
            matrix = np.pad(
                matrix, ((0, 0), (0, self._n_dimensions - matrix.shape[1]))
            )
        return matrix

    def dimension_labels(self) -> List[str]:
        labels = self._vectorizer.feature_names()
        while len(labels) < self._n_dimensions:
            labels.append(f"<unused-{len(labels)}>")
        return labels


class LdaTopicModel(TopicModel):
    """LDA topic-distribution signature (the paper's evaluated backend)."""

    name = "lda"

    def __init__(
        self,
        n_topics: int = 25,
        n_iterations: int = 150,
        inference_iterations: int = 30,
        seed: int = 0,
        synonym_folder: Optional[SynonymFolder] = None,
    ) -> None:
        super().__init__(synonym_folder)
        self._lda = LatentDirichletAllocation(
            n_topics=n_topics,
            n_iterations=n_iterations,
            burn_in=max(1, n_iterations // 4),
            seed=seed,
        )
        self._inference_iterations = inference_iterations
        self._fitted = False

    @property
    def n_dimensions(self) -> int:
        return self._lda.n_topics

    @property
    def lda(self) -> LatentDirichletAllocation:
        """The underlying LDA model (for inspection and tests)."""
        return self._lda

    def fit(self, documents: Sequence[Iterable[str]]) -> "LdaTopicModel":
        prepared = [self._prepare(document) for document in documents]
        non_empty = [document for document in prepared if document]
        if not non_empty:
            raise ValueError("cannot fit LDA topic model on empty tag documents")
        self._lda.fit(non_empty)
        self._fitted = True
        return self

    def vectorize(self, tags: Iterable[str]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("LdaTopicModel must be fitted before use")
        return self._lda.infer(
            self._prepare(tags), n_iterations=self._inference_iterations
        )

    def dimension_labels(self) -> List[str]:
        labels = []
        for topic in range(self._lda.n_topics):
            if self._fitted:
                top = self._lda.top_words(topic, n=3)
                labels.append("topic:" + "/".join(token for token, _ in top))
            else:
                labels.append(f"topic:{topic}")
        return labels


def build_topic_model(
    backend: str = "lda",
    n_dimensions: int = 25,
    seed: int = 0,
    synonyms: Optional[Mapping[str, str]] = None,
    lda_iterations: int = 150,
) -> TopicModel:
    """Factory for topic-model backends by name.

    ``backend`` is one of ``"frequency"``, ``"tfidf"`` or ``"lda"``.
    """
    folder = SynonymFolder(synonyms) if synonyms is not None else None
    backend = backend.lower()
    if backend == "frequency":
        return FrequencyTopicModel(n_dimensions=n_dimensions, synonym_folder=folder)
    if backend == "tfidf":
        return TfIdfTopicModel(n_dimensions=n_dimensions, synonym_folder=folder)
    if backend == "lda":
        return LdaTopicModel(
            n_topics=n_dimensions,
            n_iterations=lda_iterations,
            seed=seed,
            synonym_folder=folder,
        )
    raise ValueError(f"unknown topic model backend {backend!r}")
