"""Tests for the algorithm registry and shared solve machinery."""

from __future__ import annotations

import pytest

from repro.algorithms import available_algorithms, build_algorithm
from repro.algorithms.base import MiningAlgorithm, register_algorithm
from repro.core.functions import default_function_suite
from repro.core.problem import table1_problem


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = available_algorithms()
        assert {"exact", "sm-lsh", "sm-lsh-fi", "sm-lsh-fo", "dv-fdp", "dv-fdp-fi", "dv-fdp-fo"} <= set(names)

    def test_build_by_name(self):
        algorithm = build_algorithm("exact")
        assert algorithm.name == "exact"

    def test_build_unknown_name(self):
        with pytest.raises(KeyError):
            build_algorithm("simulated-annealing")

    def test_build_filters_unknown_options(self):
        # 'seed' is not accepted by ExactAlgorithm and must be dropped silently.
        algorithm = build_algorithm("exact", seed=3, max_candidates=10)
        assert algorithm.max_candidates == 10

    def test_register_requires_name(self):
        with pytest.raises(ValueError):

            @register_algorithm
            class Nameless(MiningAlgorithm):  # pragma: no cover - definition only
                def _solve(self, problem, groups, evaluator):
                    raise NotImplementedError


class TestSolveContract:
    def test_solve_rejects_empty_group_list(self):
        algorithm = build_algorithm("dv-fdp")
        with pytest.raises(ValueError):
            algorithm.solve(table1_problem(6), [], default_function_suite())

    def test_solve_records_elapsed_time(self, prepared_session):
        problem = table1_problem(6, k=3, min_support=prepared_session.default_support())
        algorithm = build_algorithm("dv-fdp-fo")
        result = algorithm.solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        assert result.elapsed_seconds > 0.0

    def test_shared_cache_is_used_when_groups_match(self, prepared_session):
        problem = table1_problem(6, k=3, min_support=prepared_session.default_support())
        algorithm = build_algorithm("dv-fdp-fo")
        cache = prepared_session.matrix_cache()
        algorithm.solve(
            problem, prepared_session.groups, prepared_session.functions, cache=cache
        )
        assert algorithm._matrix_cache(
            prepared_session.groups, prepared_session.functions
        ) is cache

    def test_shared_cache_ignored_when_groups_differ(self, prepared_session):
        algorithm = build_algorithm("dv-fdp-fo")
        cache = prepared_session.matrix_cache()
        algorithm._shared_cache = cache
        subset = prepared_session.groups[:5]
        rebuilt = algorithm._matrix_cache(subset, prepared_session.functions)
        assert rebuilt is not cache
        assert len(rebuilt) == 5
