"""Parity: batched subset scoring vs. the per-set problem evaluator.

``BatchCandidateScorer`` must reproduce, for every candidate subset, the
(feasible, objective) judgement that ``ProblemEvaluator.evaluate`` plus
the SM-LSH ``_bucket_feasible`` wrapper produce one set at a time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.scoring import (
    BatchCandidateScorer,
    PairwiseMatrixCache,
    ProblemEvaluator,
)
from repro.core.measures import Criterion, Dimension, MIN_AGGREGATOR, PairwiseAggregationFunction
from repro.core.problem import table1_problem


@pytest.fixture(scope="module")
def scoring_setup(prepared_session):
    problem = table1_problem(1, k=3, min_support=prepared_session.default_support())
    groups = prepared_session.groups
    functions = prepared_session.functions
    cache = PairwiseMatrixCache(groups, functions)
    evaluator = ProblemEvaluator(problem, functions)
    return problem, groups, functions, cache, evaluator


def random_subsets(n_groups: int, seed: int):
    rng = np.random.default_rng(seed)
    subsets = []
    for size in (1, 2, 3, 4):
        for _ in range(12):
            subsets.append(rng.choice(n_groups, size=size, replace=False).tolist())
    return subsets


class TestBatchScoringParity:
    def test_supports_default_suite(self, scoring_setup):
        problem, _groups, functions, _cache, _evaluator = scoring_setup
        assert BatchCandidateScorer.supports(problem, functions)

    def test_rejects_non_mean_aggregation(self, scoring_setup, prepared_session):
        problem = scoring_setup[0]
        from repro.core.functions import FunctionSuite

        min_tags = PairwiseAggregationFunction(
            lambda a, b, d, c: 0.5, aggregator=MIN_AGGREGATOR, name="min-tags"
        )
        suite = FunctionSuite(users=min_tags, items=min_tags, tags=min_tags)
        assert not BatchCandidateScorer.supports(problem, suite)

    def test_rejects_suites_without_matrix_builders(self, scoring_setup):
        # Mean aggregation alone is not enough: set-overlap comparisons
        # register no vectorised matrix builder, so batch scoring would
        # trigger an O(n^2) Python matrix build worse than per-candidate
        # evaluation.  Table 1 problems constrain users and items.
        problem = scoring_setup[0]
        from repro.core.functions import default_function_suite

        suite = default_function_suite(
            user_comparison="set-overlap", item_comparison="set-overlap"
        )
        assert not BatchCandidateScorer.supports(problem, suite)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("require_constraints", [False, True])
    def test_matches_per_set_evaluator(self, scoring_setup, seed, require_constraints):
        problem, groups, _functions, cache, evaluator = scoring_setup
        scorer = BatchCandidateScorer(cache, problem)
        candidates = random_subsets(len(groups), seed)
        batched = scorer.score(candidates, require_constraints=require_constraints)
        assert len(batched) == len(candidates)
        for candidate, (feasible, objective) in zip(candidates, batched):
            evaluation = evaluator.evaluate([groups[i] for i in candidate])
            expected_feasible = (
                evaluation.feasible if require_constraints else evaluation.size_ok
            )
            assert feasible == expected_feasible, candidate
            assert objective == pytest.approx(evaluation.objective_value, abs=1e-12)

    def test_batch_subset_means_match_subset_mean(self, scoring_setup):
        _problem, groups, _functions, cache, _evaluator = scoring_setup
        rng = np.random.default_rng(3)
        subsets = np.asarray(
            [rng.choice(len(groups), size=3, replace=False) for _ in range(20)]
        )
        means = cache.batch_subset_means(subsets, Dimension.TAGS, Criterion.SIMILARITY)
        for subset, mean in zip(subsets, means):
            assert mean == pytest.approx(
                cache.subset_mean(subset.tolist(), Dimension.TAGS, Criterion.SIMILARITY),
                abs=1e-12,
            )
