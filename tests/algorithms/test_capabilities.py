"""Tests for the Table 2 capability matrix and algorithm recommendation."""

from __future__ import annotations

from repro.algorithms.capabilities import capability_matrix, recommend_algorithm
from repro.core.measures import Criterion, Dimension
from repro.core.problem import Objective, TagDMProblem, table1_problem


class TestCapabilityMatrix:
    def test_six_rows_like_the_paper(self):
        rows = capability_matrix()
        assert len(rows) == 6

    def test_families_split_by_optimisation(self):
        rows = capability_matrix()
        lsh_rows = [row for row in rows if row.algorithm_family == "LSH based"]
        fdp_rows = [row for row in rows if row.algorithm_family == "FDP based"]
        assert all(row.optimization == "similarity" for row in lsh_rows)
        assert all(row.optimization == "diversity" for row in fdp_rows)
        assert len(lsh_rows) == len(fdp_rows) == 3

    def test_constraint_mixes_covered(self):
        rows = capability_matrix()
        for family in ("LSH based", "FDP based"):
            mixes = {row.constraints for row in rows if row.algorithm_family == family}
            assert mixes == {"similarity", "diversity", "similarity, diversity"}


class TestRecommendation:
    def test_table1_similarity_problems_use_lsh(self):
        for problem_id in (1, 2, 3):
            assert recommend_algorithm(table1_problem(problem_id)) == "sm-lsh-fo"

    def test_table1_diversity_problems_use_fdp(self):
        for problem_id in (4, 5, 6):
            assert recommend_algorithm(table1_problem(problem_id)) == "dv-fdp-fo"

    def test_unconstrained_problems_use_plain_variants(self):
        similarity = TagDMProblem(
            name="sim",
            constraints=(),
            objectives=(Objective(Dimension.TAGS, Criterion.SIMILARITY),),
        )
        diversity = TagDMProblem(
            name="div",
            constraints=(),
            objectives=(Objective(Dimension.TAGS, Criterion.DIVERSITY),),
        )
        assert recommend_algorithm(similarity) == "sm-lsh"
        assert recommend_algorithm(diversity) == "dv-fdp"

    def test_mixed_objectives_prefer_fdp(self):
        problem = TagDMProblem(
            name="mixed",
            constraints=(),
            objectives=(
                Objective(Dimension.TAGS, Criterion.SIMILARITY),
                Objective(Dimension.USERS, Criterion.DIVERSITY),
            ),
        )
        assert recommend_algorithm(problem) == "dv-fdp"
