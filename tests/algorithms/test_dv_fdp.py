"""Tests for the DV-FDP algorithm family."""

from __future__ import annotations

import time
from math import comb

import pytest

from repro.algorithms import (
    DvFdpAlgorithm,
    DvFdpFilterAlgorithm,
    DvFdpFoldAlgorithm,
    ExactAlgorithm,
)
from repro.algorithms.dv_fdp import EXACT_POST_FILTER_CAP
from repro.core.problem import table1_problem


@pytest.fixture(scope="module")
def diversity_problem(prepared_session):
    return table1_problem(6, k=3, min_support=prepared_session.default_support())


class TestConstruction:
    def test_invalid_pool_multiplier(self):
        with pytest.raises(ValueError):
            DvFdpFilterAlgorithm(filter_pool_multiplier=0)

    def test_invalid_post_filter_cap(self):
        with pytest.raises(ValueError):
            DvFdpFilterAlgorithm(post_filter_cap=0)

    def test_constraint_modes(self):
        assert DvFdpAlgorithm.constraint_mode == "none"
        assert DvFdpFilterAlgorithm.constraint_mode == "filter"
        assert DvFdpFoldAlgorithm.constraint_mode == "fold"


class TestPlainDvFdp:
    def test_returns_k_groups(self, prepared_session, diversity_problem):
        result = DvFdpAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        assert result.k == diversity_problem.k_hi
        assert 0.0 <= result.objective_value <= 1.0

    def test_greedy_is_deterministic(self, prepared_session, diversity_problem):
        result_a = DvFdpAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        result_b = DvFdpAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        assert result_a.descriptions() == result_b.descriptions()

    def test_factor_4_guarantee_without_constraints(self, prepared_session):
        """Theorem 4: unconstrained DV-FDP is within factor 4 of Exact."""
        problem = table1_problem(6, k=3, min_support=0, user_threshold=0.0, item_threshold=0.0)
        groups = prepared_session.groups[:20]
        exact = ExactAlgorithm().solve(problem, groups, prepared_session.functions)
        greedy = DvFdpAlgorithm().solve(problem, groups, prepared_session.functions)
        assert exact.objective_value <= 4.0 * greedy.objective_value + 1e-9


class TestConstraintHandling:
    def test_fold_result_is_feasible(self, prepared_session, diversity_problem):
        result = DvFdpFoldAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        assert not result.is_empty
        assert result.feasible
        for constraint in diversity_problem.constraints:
            key = f"{constraint.dimension.value}.{constraint.criterion.value}"
            assert result.constraint_scores[key] >= constraint.threshold - 1e-9

    def test_filter_result_feasible_or_null(self, prepared_session, diversity_problem):
        result = DvFdpFilterAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        assert result.is_empty or result.feasible

    def test_fold_handles_all_diversity_problems(self, prepared_session):
        for problem_id in (4, 5, 6):
            problem = table1_problem(
                problem_id, k=3, min_support=prepared_session.default_support()
            )
            result = DvFdpFoldAlgorithm().solve(
                problem, prepared_session.groups, prepared_session.functions
            )
            assert result.is_empty or result.feasible

    def test_quality_close_to_exact(self, prepared_session, diversity_problem):
        exact = ExactAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        folded = DvFdpFoldAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        if not exact.is_empty and not folded.is_empty:
            assert folded.objective_value >= 0.6 * exact.objective_value

    def test_far_fewer_evaluations_than_exact(self, prepared_session, diversity_problem):
        exact = ExactAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        folded = DvFdpFoldAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        assert folded.evaluations < exact.evaluations / 5

    def test_impossible_constraints_yield_null(self, prepared_session):
        problem = table1_problem(
            6,
            k=3,
            min_support=prepared_session.default_support(),
            user_threshold=1.0,
            item_threshold=1.0,
        )
        result = DvFdpFoldAlgorithm().solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        # Either nothing is pairwise-feasible (null) or a fully identical
        # description set was found (feasible); both are acceptable, but an
        # infeasible non-null result is not.
        assert result.is_empty or result.feasible

    def test_metadata_mentions_mode(self, prepared_session, diversity_problem):
        result = DvFdpFoldAlgorithm().solve(
            diversity_problem, prepared_session.groups, prepared_session.functions
        )
        assert result.metadata["constraint_mode"] == "fold"
        assert result.metadata["candidate_groups"] == len(prepared_session.groups)

    def test_extends_to_similarity_goals(self, prepared_session):
        """Section 5: the FDP approach also handles similarity maximisation."""
        problem = table1_problem(1, k=3, min_support=prepared_session.default_support())
        result = DvFdpFoldAlgorithm().solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        assert result.is_empty or result.feasible


class TestBoundedPostFilter:
    """Regression: the Fi post-filter must not enumerate C(pool, k) subsets."""

    def test_large_k_completes_in_seconds(self, prepared_session):
        """k=15 over the default pool of 45 used to mean C(45, 15) ~ 3e11
        evaluations; the bounded search must finish in under two seconds."""
        problem = table1_problem(
            6, k=15, min_support=prepared_session.default_support()
        )
        algorithm = DvFdpFilterAlgorithm(filter_pool_multiplier=3)
        started = time.perf_counter()
        result = algorithm.solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0
        assert result.is_empty or result.feasible
        assert result.evaluations < comb(45, 15) // 10**6

    def test_small_pools_keep_exhaustive_semantics(self, prepared_session):
        """Below the cap the post-filter still enumerates every subset, so
        results are unchanged from the pre-fix behaviour."""
        assert comb(9, 3) <= EXACT_POST_FILTER_CAP  # default pool at k=3
        problem = table1_problem(4, k=3, min_support=prepared_session.default_support())
        bounded = DvFdpFilterAlgorithm().solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        exhaustive = DvFdpFilterAlgorithm(post_filter_cap=10**9).solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        assert bounded.objective_value == exhaustive.objective_value
        assert bounded.descriptions() == exhaustive.descriptions()

    def test_greedy_path_feasibility_no_worse(self, prepared_session):
        """Forcing the greedy path (cap=1) must stay feasible wherever the
        exhaustive search found a feasible subset, on every seed problem."""
        for problem_id in (4, 5, 6):
            problem = table1_problem(
                problem_id, k=3, min_support=prepared_session.default_support()
            )
            exhaustive = DvFdpFilterAlgorithm().solve(
                problem, prepared_session.groups, prepared_session.functions
            )
            greedy = DvFdpFilterAlgorithm(post_filter_cap=1).solve(
                problem, prepared_session.groups, prepared_session.functions
            )
            if exhaustive.feasible:
                assert greedy.feasible, f"problem {problem_id} lost feasibility"

    def test_greedy_candidates_judged_exactly(self, prepared_session):
        """A greedy-path result always satisfies the full problem semantics."""
        problem = table1_problem(
            5, k=4, min_support=prepared_session.default_support()
        )
        result = DvFdpFilterAlgorithm(post_filter_cap=1).solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        if not result.is_empty:
            assert result.feasible
            for constraint in problem.constraints:
                key = f"{constraint.dimension.value}.{constraint.criterion.value}"
                assert result.constraint_scores[key] >= constraint.threshold - 1e-9
