"""Tests for the Exact brute-force baseline."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.algorithms import ExactAlgorithm
from repro.algorithms.scoring import ProblemEvaluator
from repro.core.functions import default_function_suite
from repro.core.problem import table1_problem


@pytest.fixture(scope="module")
def small_instance(prepared_session):
    """A candidate set small enough for independent re-verification."""
    groups = prepared_session.groups[:12]
    functions = prepared_session.functions
    return groups, functions


class TestGuards:
    def test_invalid_max_candidates(self):
        with pytest.raises(ValueError):
            ExactAlgorithm(max_candidates=0)

    def test_candidate_explosion_guard(self, prepared_session):
        algorithm = ExactAlgorithm(max_candidates=10)
        problem = table1_problem(1, k=3, min_support=1)
        with pytest.raises(ValueError, match="max_candidates"):
            algorithm.solve(problem, prepared_session.groups, prepared_session.functions)


class TestOptimality:
    def test_exact_finds_the_true_optimum(self, small_instance):
        """Cross-check Exact against a naive re-evaluation of every k-subset."""
        groups, functions = small_instance
        problem = table1_problem(6, k=3, min_support=5)
        result = ExactAlgorithm().solve(problem, groups, functions)

        evaluator = ProblemEvaluator(problem, functions)
        best = None
        for subset in combinations(range(len(groups)), 3):
            evaluation = evaluator.evaluate([groups[i] for i in subset])
            if evaluation.feasible and (best is None or evaluation.objective_value > best):
                best = evaluation.objective_value

        if best is None:
            assert result.is_empty
        else:
            assert result.feasible
            assert result.objective_value == pytest.approx(best, abs=1e-9)

    def test_exact_result_satisfies_all_constraints(self, small_instance):
        groups, functions = small_instance
        problem = table1_problem(4, k=3, min_support=5)
        result = ExactAlgorithm().solve(problem, groups, functions)
        if not result.is_empty:
            assert result.feasible
            assert result.support >= problem.min_support
            assert problem.k_lo <= result.k <= problem.k_hi
            for constraint in problem.constraints:
                key = f"{constraint.dimension.value}.{constraint.criterion.value}"
                assert result.constraint_scores[key] >= constraint.threshold - 1e-9

    def test_evaluations_counted(self, small_instance):
        groups, functions = small_instance
        problem = table1_problem(1, k=3, min_support=5)
        result = ExactAlgorithm().solve(problem, groups, functions)
        from math import comb

        assert result.evaluations == comb(len(groups), 3)

    def test_infeasible_support_returns_null(self, small_instance):
        groups, functions = small_instance
        problem = table1_problem(1, k=3, min_support=10**6)
        result = ExactAlgorithm().solve(problem, groups, functions)
        assert result.is_empty
        assert not result.feasible

    def test_k_range_enumeration(self, small_instance):
        """With k_lo=1 a feasible singleton can win on similarity problems."""
        groups, functions = small_instance
        problem = table1_problem(1, k=3, min_support=5, k_lo=1)
        result = ExactAlgorithm().solve(problem, groups, functions)
        assert not result.is_empty
        # A singleton trivially maximises similarity (score 1.0).
        assert result.objective_value == pytest.approx(1.0)
        assert result.k == 1
