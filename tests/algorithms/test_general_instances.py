"""Tests exercising the framework beyond the six Table 1 presets.

The TagDM framework (Definition 4) allows any mix of constrained and
optimised dimensions, weighted multi-term objectives and asymmetric
thresholds; these tests run a sample of those general instances through
the algorithms to make sure nothing assumes the Table 1 shape.
"""

from __future__ import annotations

import pytest

from repro.algorithms import ExactAlgorithm, build_algorithm
from repro.algorithms.capabilities import recommend_algorithm
from repro.core.measures import Criterion, Dimension
from repro.core.problem import (
    Constraint,
    Objective,
    TagDMProblem,
    enumerate_problem_instances,
)


@pytest.fixture(scope="module")
def groups_and_functions(prepared_session):
    return prepared_session.groups[:30], prepared_session.functions


class TestMultiObjectiveProblems:
    def test_weighted_two_term_objective(self, groups_and_functions):
        groups, functions = groups_and_functions
        problem = TagDMProblem(
            name="tags-and-users",
            constraints=(Constraint(Dimension.ITEMS, Criterion.SIMILARITY, 0.4),),
            objectives=(
                Objective(Dimension.TAGS, Criterion.SIMILARITY, weight=2.0),
                Objective(Dimension.USERS, Criterion.SIMILARITY, weight=1.0),
            ),
            k_lo=2,
            k_hi=2,
            min_support=10,
        )
        result = ExactAlgorithm().solve(problem, groups, functions)
        if not result.is_empty:
            # Weighted sum of two unit-range terms: bounded by total weight.
            assert 0.0 <= result.objective_value <= 3.0
            assert result.feasible

    def test_weight_changes_the_chosen_optimum_or_score(self, groups_and_functions):
        groups, functions = groups_and_functions
        base = TagDMProblem(
            name="balanced",
            constraints=(),
            objectives=(
                Objective(Dimension.TAGS, Criterion.DIVERSITY, weight=1.0),
                Objective(Dimension.USERS, Criterion.DIVERSITY, weight=1.0),
            ),
            k_lo=3,
            k_hi=3,
        )
        skewed = TagDMProblem(
            name="tag-heavy",
            constraints=(),
            objectives=(
                Objective(Dimension.TAGS, Criterion.DIVERSITY, weight=5.0),
                Objective(Dimension.USERS, Criterion.DIVERSITY, weight=1.0),
            ),
            k_lo=3,
            k_hi=3,
        )
        balanced = ExactAlgorithm().solve(base, groups, functions)
        tag_heavy = ExactAlgorithm().solve(skewed, groups, functions)
        assert tag_heavy.objective_value >= balanced.objective_value

    def test_user_dimension_as_sole_objective(self, groups_and_functions):
        """Nothing hard-codes tags as the optimised dimension."""
        groups, functions = groups_and_functions
        problem = TagDMProblem(
            name="user-diversity-goal",
            constraints=(Constraint(Dimension.TAGS, Criterion.SIMILARITY, 0.2),),
            objectives=(Objective(Dimension.USERS, Criterion.DIVERSITY),),
            k_lo=2,
            k_hi=3,
            min_support=10,
        )
        algorithm = build_algorithm(recommend_algorithm(problem))
        result = algorithm.solve(problem, groups, functions)
        assert result.is_empty or result.feasible


class TestFrameworkInstanceSample:
    @pytest.mark.parametrize("index", [0, 13, 27, 41, 55, 69, 83, 97])
    def test_sampled_instances_solve_without_error(
        self, groups_and_functions, index
    ):
        """A spread of the 98 enumerated instances runs end to end."""
        groups, functions = groups_and_functions
        problems = enumerate_problem_instances(k=2, min_support=5, threshold=0.3)
        problem = problems[index]
        algorithm = build_algorithm(recommend_algorithm(problem))
        result = algorithm.solve(problem, groups, functions)
        assert result.algorithm == algorithm.name
        assert result.is_empty or problem.k_lo <= result.k <= problem.k_hi

    def test_exact_on_unconstrained_instance(self, groups_and_functions):
        groups, functions = groups_and_functions
        problem = TagDMProblem(
            name="pure-tag-diversity",
            constraints=(),
            objectives=(Objective(Dimension.TAGS, Criterion.DIVERSITY),),
            k_lo=2,
            k_hi=2,
        )
        exact = ExactAlgorithm().solve(problem, groups, functions)
        greedy = build_algorithm("dv-fdp").solve(problem, groups, functions)
        assert not exact.is_empty and not greedy.is_empty
        assert greedy.objective_value <= exact.objective_value + 1e-9
        # Theorem 4's factor-4 bound for the unconstrained case.
        assert exact.objective_value <= 4.0 * greedy.objective_value + 1e-9
