"""Tests for problem evaluation and the pairwise matrix cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.scoring import PairwiseMatrixCache, ProblemEvaluator
from repro.core.functions import default_function_suite
from repro.core.groups import build_group
from repro.core.measures import Criterion, Dimension
from repro.core.problem import Constraint, Objective, TagDMProblem, table1_problem
from repro.core.signatures import GroupSignatureBuilder


@pytest.fixture()
def evaluated_groups(tiny_dataset):
    groups = [
        build_group(tiny_dataset, {"item.genre": "action"}),
        build_group(tiny_dataset, {"item.genre": "comedy"}),
        build_group(tiny_dataset, {"user.gender": "male"}),
        build_group(tiny_dataset, {"user.gender": "female"}),
    ]
    GroupSignatureBuilder(backend="frequency", n_dimensions=6).build(groups)
    return groups


@pytest.fixture()
def suite():
    return default_function_suite()


class TestProblemEvaluator:
    def test_objective_value_range(self, evaluated_groups, suite):
        evaluator = ProblemEvaluator(table1_problem(1, k=3, min_support=1), suite)
        value = evaluator.objective_value(evaluated_groups[:3])
        assert 0.0 <= value <= 1.0

    def test_constraint_scores_keys(self, evaluated_groups, suite):
        evaluator = ProblemEvaluator(table1_problem(4, k=2, min_support=1), suite)
        scores = evaluator.constraint_scores(evaluated_groups[:2])
        assert set(scores) == {"users.diversity", "items.similarity"}

    def test_feasibility_checks_all_requirements(self, evaluated_groups, suite):
        # Two item-genre groups share no user attributes -> user similarity 0.
        problem = table1_problem(1, k=2, min_support=1)
        evaluator = ProblemEvaluator(problem, suite)
        evaluation = evaluator.evaluate(evaluated_groups[:2])
        assert evaluation.size_ok
        assert evaluation.support_ok
        assert not evaluation.constraints_ok
        assert not evaluation.feasible

    def test_support_threshold_enforced(self, evaluated_groups, suite):
        problem = table1_problem(1, k=2, min_support=1000)
        evaluator = ProblemEvaluator(problem, suite)
        assert not evaluator.evaluate(evaluated_groups[:2]).support_ok

    def test_size_bounds_enforced(self, evaluated_groups, suite):
        problem = table1_problem(1, k=2, min_support=1)  # exactly 2 groups
        evaluator = ProblemEvaluator(problem, suite)
        assert not evaluator.evaluate(evaluated_groups[:3]).size_ok
        assert not evaluator.evaluate(evaluated_groups[:1]).size_ok

    def test_is_feasible_shorthand(self, evaluated_groups, suite):
        # The two gender groups share the gender attribute with different
        # values ("male" vs "female" have edit-distance similarity 2/3), so
        # a user-diversity constraint with a threshold below 1/3 holds.
        problem = TagDMProblem(
            name="custom",
            constraints=(Constraint(Dimension.USERS, Criterion.DIVERSITY, 0.25),),
            objectives=(Objective(Dimension.TAGS, Criterion.DIVERSITY),),
            k_lo=2,
            k_hi=2,
            min_support=1,
        )
        evaluator = ProblemEvaluator(problem, suite)
        assert evaluator.is_feasible(evaluated_groups[2:4])


class TestPairwiseMatrixCache:
    def test_matrix_symmetry_and_diagonal(self, evaluated_groups, suite):
        cache = PairwiseMatrixCache(evaluated_groups, suite)
        similarity = cache.matrix(Dimension.TAGS, Criterion.SIMILARITY)
        assert similarity.shape == (4, 4)
        assert np.allclose(similarity, similarity.T)
        assert np.allclose(np.diag(similarity), 1.0)
        diversity = cache.matrix(Dimension.TAGS, Criterion.DIVERSITY)
        assert np.allclose(np.diag(diversity), 0.0)

    def test_matrix_cached(self, evaluated_groups, suite):
        cache = PairwiseMatrixCache(evaluated_groups, suite)
        first = cache.matrix(Dimension.USERS, Criterion.SIMILARITY)
        second = cache.matrix(Dimension.USERS, Criterion.SIMILARITY)
        assert first is second

    def test_opposite_criterion_derived_from_builder(self, evaluated_groups, suite):
        cache = PairwiseMatrixCache(evaluated_groups, suite)
        similarity = cache.matrix(Dimension.USERS, Criterion.SIMILARITY)
        diversity = cache.matrix(Dimension.USERS, Criterion.DIVERSITY)
        off_diagonal = ~np.eye(len(evaluated_groups), dtype=bool)
        assert np.allclose((similarity + diversity)[off_diagonal], 1.0)

    def test_matrix_matches_pairwise_function(self, evaluated_groups, suite):
        cache = PairwiseMatrixCache(evaluated_groups, suite)
        matrix = cache.matrix(Dimension.ITEMS, Criterion.SIMILARITY)
        for i in range(4):
            for j in range(4):
                if i != j:
                    expected = suite.pairwise(
                        evaluated_groups[i],
                        evaluated_groups[j],
                        Dimension.ITEMS,
                        Criterion.SIMILARITY,
                    )
                    assert matrix[i, j] == pytest.approx(expected, abs=1e-9)

    def test_subset_mean_and_singleton_convention(self, evaluated_groups, suite):
        cache = PairwiseMatrixCache(evaluated_groups, suite)
        assert cache.subset_mean([0], Dimension.TAGS, Criterion.SIMILARITY) == 1.0
        assert cache.subset_mean([0], Dimension.TAGS, Criterion.DIVERSITY) == 0.0
        pair_mean = cache.subset_mean([0, 1], Dimension.TAGS, Criterion.SIMILARITY)
        matrix = cache.matrix(Dimension.TAGS, Criterion.SIMILARITY)
        assert pair_mean == pytest.approx(matrix[0, 1])

    def test_subset_support_overlapping_groups(self, evaluated_groups, suite):
        cache = PairwiseMatrixCache(evaluated_groups, suite)
        # Groups 0/1 partition the dataset by genre; groups 2/3 by gender:
        # the candidate set is NOT disjoint overall.
        assert not cache.groups_are_disjoint
        assert cache.subset_support([0, 1]) == 4
        assert cache.subset_support([0, 2]) == len(
            set(evaluated_groups[0].tuple_indices)
            | set(evaluated_groups[2].tuple_indices)
        )

    def test_subset_support_disjoint_fast_path(self, evaluated_groups, suite):
        disjoint = evaluated_groups[:2]
        cache = PairwiseMatrixCache(disjoint, suite)
        assert cache.groups_are_disjoint
        assert cache.subset_support([0, 1]) == sum(g.support for g in disjoint)

    def test_objective_and_constraint_matrices(self, evaluated_groups, suite):
        problem = table1_problem(4, k=2, min_support=1)
        cache = PairwiseMatrixCache(evaluated_groups, suite)
        objective = cache.objective_matrix(problem)
        assert objective.shape == (4, 4)
        constraints = cache.constraint_matrices(problem)
        assert len(constraints) == 2
        keys = {key for _, _, key in constraints}
        assert keys == {"users.diversity", "items.similarity"}
