"""Tests for the SM-LSH algorithm family."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    ExactAlgorithm,
    SmLshAlgorithm,
    SmLshFilterAlgorithm,
    SmLshFoldAlgorithm,
)
from repro.core.problem import table1_problem


@pytest.fixture(scope="module")
def similarity_problem(prepared_session):
    return table1_problem(1, k=3, min_support=prepared_session.default_support())


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SmLshAlgorithm(n_bits=0)
        with pytest.raises(ValueError):
            SmLshAlgorithm(n_tables=0)
        with pytest.raises(ValueError):
            SmLshAlgorithm(max_relaxations=0)
        with pytest.raises(ValueError):
            SmLshAlgorithm(max_subsets_per_bucket=0)

    def test_constraint_modes(self):
        assert SmLshAlgorithm.constraint_mode == "none"
        assert SmLshFilterAlgorithm.constraint_mode == "filter"
        assert SmLshFoldAlgorithm.constraint_mode == "fold"


class TestPlainSmLsh:
    def test_returns_group_set_within_bounds(self, prepared_session, similarity_problem):
        result = SmLshAlgorithm(seed=1).solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        assert not result.is_empty
        assert similarity_problem.k_lo <= result.k <= similarity_problem.k_hi
        # Plain SM-LSH ignores hard constraints, so feasibility is reported
        # but not guaranteed; the objective must still be meaningful.
        assert 0.0 <= result.objective_value <= 1.0

    def test_metadata_records_lsh_parameters(self, prepared_session, similarity_problem):
        result = SmLshAlgorithm(n_bits=8, n_tables=2, seed=1).solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        assert result.metadata["n_bits_initial"] == 8
        assert result.metadata["n_tables"] == 2
        assert result.metadata["constraint_mode"] == "none"

    def test_deterministic_given_seed(self, prepared_session, similarity_problem):
        result_a = SmLshAlgorithm(seed=5).solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        result_b = SmLshAlgorithm(seed=5).solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        assert result_a.descriptions() == result_b.descriptions()


class TestConstraintHandling:
    def test_fold_result_is_feasible(self, prepared_session, similarity_problem):
        result = SmLshFoldAlgorithm(seed=1).solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        assert not result.is_empty
        assert result.feasible
        for constraint in similarity_problem.constraints:
            key = f"{constraint.dimension.value}.{constraint.criterion.value}"
            assert result.constraint_scores[key] >= constraint.threshold - 1e-9

    def test_filter_result_feasible_or_null(self, prepared_session, similarity_problem):
        result = SmLshFilterAlgorithm(seed=1).solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        assert result.is_empty or result.feasible

    def test_fold_handles_diversity_constraint_problems(self, prepared_session):
        # Problem 2: item constraint is diversity, which is filtered rather
        # than folded; the algorithm must still return a feasible set here.
        problem = table1_problem(2, k=3, min_support=prepared_session.default_support())
        result = SmLshFoldAlgorithm(seed=1).solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        assert result.is_empty or result.feasible

    def test_quality_close_to_exact(self, prepared_session, similarity_problem):
        """The paper's headline: near-Exact quality at a fraction of the cost."""
        exact = ExactAlgorithm().solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        folded = SmLshFoldAlgorithm(seed=1).solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        assert not exact.is_empty and not folded.is_empty
        assert folded.objective_value >= 0.7 * exact.objective_value

    def test_far_fewer_evaluations_than_exact(self, prepared_session, similarity_problem):
        exact = ExactAlgorithm().solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        folded = SmLshFoldAlgorithm(seed=1).solve(
            similarity_problem, prepared_session.groups, prepared_session.functions
        )
        assert folded.evaluations < exact.evaluations / 5

    def test_impossible_support_yields_null(self, prepared_session):
        problem = table1_problem(1, k=3, min_support=10**6)
        result = SmLshFoldAlgorithm(seed=1).solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        assert result.is_empty
        assert not result.feasible

    def test_relaxation_metadata(self, prepared_session):
        problem = table1_problem(1, k=3, min_support=10**6)
        result = SmLshFoldAlgorithm(seed=1, n_bits=8, max_relaxations=3).solve(
            problem, prepared_session.groups, prepared_session.functions
        )
        assert result.metadata["relaxations"] >= 1
