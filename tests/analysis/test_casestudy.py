"""Tests for case-study contrast building."""

from __future__ import annotations

import pytest

from repro.analysis.casestudy import GroupContrast, build_case_study, render_case_study
from repro.analysis.queries import AnalysisQuery, GroupReport, AnalysisReport
from repro.core.problem import table1_problem
from repro.core.result import MiningResult
from repro.text.tagcloud import build_tag_cloud


def make_report(group_tag_lists):
    """Build an AnalysisReport from raw per-group tag lists."""
    groups = []
    for position, tags in enumerate(group_tag_lists):
        cloud = build_tag_cloud(tags, title=f"group-{position}")
        groups.append(
            GroupReport(
                description=f"group-{position}",
                support=len(tags),
                top_tags=[(entry.tag, entry.count) for entry in cloud.entries],
                cloud=cloud,
            )
        )
    query = AnalysisQuery.build({}, problem=6, title="test query")
    result = MiningResult(
        problem=table1_problem(6, k=max(1, len(group_tag_lists)), min_support=0),
        algorithm="dv-fdp-fo",
        groups=(),
        objective_value=0.5,
        feasible=True,
    )
    return AnalysisReport(query=query, result=result, scoped_tuples=10, groups=groups)


class TestBuildCaseStudy:
    def test_contrast_counts_pairs(self):
        report = make_report([["a", "b"], ["b", "c"], ["d"]])
        study = build_case_study(report)
        assert len(study.contrasts) == 3
        assert study.has_findings

    def test_shared_and_distinct_tags(self):
        report = make_report([["gun", "explosion", "war"], ["war", "romance"]])
        study = build_case_study(report)
        contrast = study.contrasts[0]
        assert contrast.shared_tags == ["war"]
        assert set(contrast.only_a) == {"gun", "explosion"}
        assert contrast.only_b == ["romance"]

    def test_top_n_limits_comparison(self):
        report = make_report([["a"] * 5 + ["rare"], ["rare"] * 2 + ["b"]])
        full = build_case_study(report, top_n=10).contrasts[0]
        limited = build_case_study(report, top_n=1).contrasts[0]
        assert "rare" in full.shared_tags
        assert "rare" not in limited.shared_tags

    def test_single_group_has_no_contrasts(self):
        study = build_case_study(make_report([["a", "b"]]))
        assert study.contrasts == []
        assert not study.has_findings


class TestRendering:
    def test_contrast_describe(self):
        contrast = GroupContrast(
            group_a="A", group_b="B", shared_tags=["x"], only_a=["y"], only_b=[]
        )
        text = contrast.describe()
        assert "A vs B" in text
        assert "[x]" in text
        assert "(none)" in text

    def test_render_case_study_full(self):
        report = make_report([["a", "b"], ["b", "c"]])
        study = build_case_study(report)
        text = render_case_study(study)
        assert "# Case study: test query" in text
        assert "group-0 vs group-1" in text

    def test_render_without_contrasts_mentions_it(self):
        study = build_case_study(make_report([["a"]]))
        assert "no contrast to report" in render_case_study(study)
