"""Tests for query-scoped analysis."""

from __future__ import annotations

import pytest

from repro.analysis.queries import AnalysisQuery, analyze
from repro.core.problem import table1_problem


class TestAnalysisQuery:
    def test_build_generates_title(self):
        query = AnalysisQuery.build({"item.genre": "war"}, problem=4)
        assert query.title == "analysis of item.genre=war"
        assert query.predicate_dict() == {"item.genre": "war"}

    def test_empty_scope_title(self):
        query = AnalysisQuery.build({}, problem=1)
        assert "all tagging actions" in query.title

    def test_explicit_title_kept(self):
        query = AnalysisQuery.build({"item.genre": "war"}, problem=4, title="custom")
        assert query.title == "custom"


class TestAnalyze:
    def test_unmatched_query_raises(self, movielens_dataset):
        query = AnalysisQuery.build({"item.genre": "telenovela"}, problem=1)
        with pytest.raises(ValueError):
            analyze(movielens_dataset, query)

    def test_report_structure(self, movielens_dataset):
        genre = max(
            movielens_dataset.value_counts("item.genre"),
            key=movielens_dataset.value_counts("item.genre").get,
        )
        query = AnalysisQuery.build({"item.genre": genre}, problem=6)
        report = analyze(movielens_dataset, query, algorithm="dv-fdp-fo", k=3)
        assert report.scoped_tuples == movielens_dataset.support({"item.genre": genre})
        assert report.result.problem.name == "problem-6"
        assert len(report.groups) == report.result.k
        for group_report in report.groups:
            assert group_report.support > 0
            assert group_report.top_tags
            assert group_report.cloud.entries
        rendered = report.render()
        assert query.title in rendered

    def test_whole_dataset_scope_with_existing_session(self, movielens_dataset, prepared_session):
        query = AnalysisQuery.build({}, problem=6)
        report = analyze(
            movielens_dataset, query, algorithm="dv-fdp-fo", session=prepared_session
        )
        assert report.scoped_tuples == movielens_dataset.n_actions
        assert report.result.algorithm == "dv-fdp-fo"

    def test_custom_problem_object(self, movielens_dataset, prepared_session):
        problem = table1_problem(4, k=2, min_support=5)
        query = AnalysisQuery.build({}, problem=problem, title="custom problem")
        report = analyze(movielens_dataset, query, session=prepared_session)
        assert report.result.problem is problem

    def test_headline_format(self, movielens_dataset, prepared_session):
        query = AnalysisQuery.build({}, problem=6)
        report = analyze(
            movielens_dataset, query, algorithm="dv-fdp-fo", session=prepared_session
        )
        if report.groups:
            headline = report.groups[0].headline(n_tags=2)
            assert ":" in headline and "(" in headline
