"""Tests for the simulated user study (Figure 9)."""

from __future__ import annotations

import pytest

from repro.analysis.userstudy import (
    DEFAULT_PREFERENCE_WEIGHTS,
    SimulatedUserStudy,
    UserStudyOutcome,
)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulatedUserStudy(n_judges=0)
        with pytest.raises(ValueError):
            SimulatedUserStudy(queries=())
        with pytest.raises(ValueError):
            SimulatedUserStudy(preference_weights={})

    def test_default_weights_prefer_single_diversity_instances(self):
        for preferred in (2, 3, 6):
            for other in (1, 4, 5):
                assert DEFAULT_PREFERENCE_WEIGHTS[preferred] > DEFAULT_PREFERENCE_WEIGHTS[other]


class TestJudges:
    def test_recruitment_size_and_bounds(self):
        judges = SimulatedUserStudy(n_judges=25, seed=1).recruit_judges()
        assert len(judges) == 25
        assert all(0.0 <= judge.familiarity <= 1.0 for judge in judges)
        assert all(len(judge.weights) == 6 for judge in judges)

    def test_recruitment_deterministic_per_seed(self):
        a = SimulatedUserStudy(seed=5).recruit_judges()
        b = SimulatedUserStudy(seed=5).recruit_judges()
        assert [j.weights for j in a] == [j.weights for j in b]


class TestRun:
    def test_total_votes_is_judges_times_queries(self):
        study = SimulatedUserStudy(n_judges=30, seed=0)
        outcome = study.run()
        assert sum(outcome.votes.values()) == 30 * 3
        assert outcome.n_judges == 30
        assert outcome.n_queries == 3

    def test_percentages_sum_to_100(self):
        outcome = SimulatedUserStudy(n_judges=30, seed=0).run()
        assert sum(outcome.preference_percentages.values()) == pytest.approx(100.0)

    def test_run_is_deterministic(self):
        outcome_a = SimulatedUserStudy(n_judges=30, seed=3).run()
        outcome_b = SimulatedUserStudy(n_judges=30, seed=3).run()
        assert outcome_a.votes == outcome_b.votes

    def test_paper_shape_problems_2_3_6_on_top(self):
        """Figure 9's finding: diversity-on-one-component instances win."""
        outcome = SimulatedUserStudy(n_judges=60, seed=1).run()
        assert set(outcome.top_problems(3)) == {2, 3, 6}

    def test_as_rows(self):
        outcome = SimulatedUserStudy(n_judges=10, seed=2).run()
        rows = outcome.as_rows()
        assert len(rows) == 6
        assert {row["problem"] for row in rows} == {1, 2, 3, 4, 5, 6}
        assert all("preference_pct" in row for row in rows)

    def test_custom_weights_change_the_ranking(self):
        outcome = SimulatedUserStudy(
            n_judges=40,
            seed=1,
            preference_weights={1: 1.0, 2: 0.2, 3: 0.2, 4: 0.2, 5: 0.2, 6: 0.2},
        ).run()
        assert outcome.ranked_problems()[0] == 1

    def test_outcome_ranking_consistent_with_votes(self):
        outcome = SimulatedUserStudy(n_judges=30, seed=7).run()
        ranked = outcome.ranked_problems()
        votes = [outcome.votes[p] for p in ranked]
        assert votes == sorted(votes, reverse=True)
