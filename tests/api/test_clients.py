"""The unified TagDMClient over its in-process backends.

The HTTP backend is exercised in ``tests/serving/test_http.py`` (it
needs a running front-end); here the Local and Server backends prove the
shared contract: same validation, same error taxonomy, bit-identical
solve results over the same warm session.
"""

from __future__ import annotations

import pytest

from repro.api import (
    CapabilityMismatchError,
    LocalClient,
    ProblemSpec,
    ServerClient,
    SolveTimeoutError,
    SpecValidationError,
    UnknownCorpusError,
)
from repro.core.enumeration import GroupEnumerationConfig
from repro.core.incremental import IncrementalTagDM
from repro.core.problem import table1_problem
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import TagDMServer

SEED = 11


def make_dataset():
    return generate_movielens_style(n_users=40, n_items=80, n_actions=600, seed=SEED)


@pytest.fixture()
def incremental_session():
    return IncrementalTagDM(
        make_dataset(), enumeration=GroupEnumerationConfig(min_support=5), seed=SEED
    ).prepare()


@pytest.fixture()
def server(tmp_path):
    with TagDMServer(tmp_path, seed=SEED) as srv:
        srv.add_corpus("movies", make_dataset())
        yield srv


class TestLocalClient:
    def test_corpora_and_health(self, incremental_session):
        client = LocalClient({"movies": incremental_session})
        assert client.corpora() == ["movies"]
        assert client.health()["status"] == "ok"

    def test_solve_accepts_problem_spec_and_payload(self, incremental_session):
        client = LocalClient({"movies": incremental_session})
        problem = table1_problem(
            1, k=3, min_support=incremental_session.default_support()
        )
        spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")
        by_problem = client.solve("movies", problem, algorithm="sm-lsh-fo")
        by_spec = client.solve("movies", spec)
        by_payload = client.solve("movies", spec.to_dict())
        assert by_problem.descriptions() == by_spec.descriptions()
        assert by_spec.descriptions() == by_payload.descriptions()
        assert by_spec.objective_value == by_payload.objective_value

    def test_insert_updates_the_session(self, incremental_session):
        client = LocalClient({"movies": incremental_session})
        before = incremental_session.dataset.n_actions
        dataset = incremental_session.dataset
        report = client.insert_action(
            "movies", dataset.user_of(0), dataset.item_of(0), ["wire-tag"]
        )
        assert report.actions_added == 1
        assert incremental_session.dataset.n_actions == before + 1

    def test_unknown_corpus(self, incremental_session):
        client = LocalClient({"movies": incremental_session})
        with pytest.raises(UnknownCorpusError):
            client.solve("books", table1_problem(1))
        with pytest.raises(UnknownCorpusError):
            client.stats("books")

    def test_insert_into_static_session_is_a_capability_mismatch(
        self, prepared_session
    ):
        client = LocalClient({"static": prepared_session})
        with pytest.raises(CapabilityMismatchError, match="static TagDM session"):
            client.insert_action("static", "u0", "i0", ["t"])

    def test_bad_action_payloads_are_validation_errors(self, incremental_session):
        client = LocalClient({"movies": incremental_session})
        with pytest.raises(SpecValidationError, match="missing 'item_id'"):
            client.insert("movies", [{"user_id": "u0"}])
        with pytest.raises(SpecValidationError, match="rejected"):
            client.insert(
                "movies",
                [{"user_id": "brand-new-user", "item_id": "i0", "tags": ["t"]}],
            )

    def test_capability_mismatch_propagates(self, incremental_session):
        client = LocalClient({"movies": incremental_session})
        with pytest.raises(CapabilityMismatchError):
            client.solve("movies", table1_problem(1), algorithm="dv-fdp-fo")

    def test_solve_timeout(self, incremental_session, monkeypatch):
        import time

        client = LocalClient({"movies": incremental_session})
        original = incremental_session.solve

        def slow_solve(*args, **kwargs):
            time.sleep(0.5)
            return original(*args, **kwargs)

        monkeypatch.setattr(incremental_session, "solve", slow_solve)
        problem = table1_problem(
            1, k=3, min_support=incremental_session.default_support()
        )
        with pytest.raises(SolveTimeoutError):
            client.solve("movies", problem, algorithm="sm-lsh-fo", timeout=0.05)


class TestServerClient:
    def test_routes_to_the_warm_shard(self, server):
        client = ServerClient(server)
        assert client.corpora() == ["movies"]
        stats = client.stats("movies")
        assert stats["name"] == "movies"
        assert stats["start_mode"] == "cold"
        health = client.health()
        assert health["status"] == "ok"
        assert health["cold_starts"] == 1

    def test_insert_then_solve(self, server):
        client = ServerClient(server)
        dataset = server.shard("movies").session.dataset
        report = client.insert_action(
            "movies", dataset.user_of(0), dataset.item_of(0), ["via-server-client"]
        )
        assert report.actions_added == 1
        problem = table1_problem(
            1, k=3, min_support=server.shard("movies").session.default_support()
        )
        result = client.solve("movies", problem, algorithm="sm-lsh-fo")
        assert result.k == 3

    def test_unknown_corpus_lists_known(self, server):
        client = ServerClient(server)
        with pytest.raises(UnknownCorpusError) as excinfo:
            client.solve("books", table1_problem(1))
        assert excinfo.value.details["known"] == ["movies"]


class TestBackendParity:
    def test_local_and_server_clients_solve_bit_identically(self, server):
        """Both backends over the *same warm session* must agree exactly."""
        shard = server.shard("movies")
        local = LocalClient({"movies": shard.session})
        remote = ServerClient(server)
        problem = table1_problem(1, k=3, min_support=shard.session.default_support())
        spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")
        a = local.solve("movies", spec)
        b = remote.solve("movies", spec)
        assert a.objective_value == b.objective_value
        assert [g.description for g in a.groups] == [g.description for g in b.groups]
        assert [g.tuple_indices for g in a.groups] == [
            g.tuple_indices for g in b.groups
        ]
