"""Metamorphic properties of the result-diff engine (repro/api/diff.py).

The contract under test is constructive: a :class:`ResultDiff` is the
exact recipe :func:`apply_diff` follows, so
``apply_diff(diff_results(old, new, w), old)`` must reproduce
``comparable_payload(new)`` byte-for-byte under canonical JSON for
*any* pair of result payloads -- including adversarial ones a solver
would never emit.  These tests generate seeded-random payload pairs
and chains and check the algebra directly, independent of any corpus
or solver (the end-to-end half lives in
``tests/serving/test_subscriptions.py``).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.api.diff import (
    VOLATILE_RESULT_FIELDS,
    ResultDiff,
    apply_diff,
    comparable_payload,
    diff_results,
    group_key,
    payloads_equal,
)
from repro.api.errors import SpecValidationError


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def random_group(rng: random.Random, key_pool) -> dict:
    """One serialised group; identity drawn from a bounded key pool so
    collisions (keep/rescore/drop cases) actually happen."""
    predicates = rng.choice(key_pool)
    return {
        "predicates": [list(pair) for pair in predicates],
        "tuple_indices": sorted(rng.sample(range(200), rng.randint(1, 12))),
    }


def random_payload(rng: random.Random, key_pool) -> dict:
    keys_used = set()
    groups = []
    for _ in range(rng.randint(0, 8)):
        group = random_group(rng, key_pool)
        key = group_key(group)
        if key in keys_used:  # identities are unique within one result
            continue
        keys_used.add(key)
        groups.append(group)
    return {
        "problem": {"name": f"problem-{rng.randint(1, 6)}", "k_lo": rng.randint(1, 5)},
        "algorithm": rng.choice(["exact", "sm-lsh-fo", "dv-fdp"]),
        "groups": groups,
        "objective_value": round(rng.uniform(0, 3), 6),
        "constraint_scores": {"users": round(rng.uniform(0, 1), 6)},
        "support": rng.randint(0, 50),
        "feasible": rng.random() < 0.9,
        # Volatile noise: must never influence any diff.
        "elapsed_seconds": rng.random(),
        "evaluations": rng.randint(0, 10_000),
        "metadata": {"nonce": rng.random()},
    }


def key_pool_for(rng: random.Random):
    """A small pool of group identities shared by a generated chain."""
    pool = []
    for i in range(10):
        n_predicates = rng.randint(1, 3)
        pool.append(
            tuple(
                (f"col-{rng.randint(0, 4)}", f"val-{i}-{j}")
                for j in range(n_predicates)
            )
        )
    return pool


class TestDiffApplyRoundTrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_apply_reconstructs_new_payload(self, seed):
        """The core metamorphic property over random payload pairs:
        apply(diff(old, new), old) == comparable(new), byte-identical
        under canonical JSON."""
        rng = random.Random(seed)
        pool = key_pool_for(rng)
        old = random_payload(rng, pool)
        new = random_payload(rng, pool)
        diff = diff_results(old, new, watermark=seed)
        rebuilt = apply_diff(diff, old)
        assert canonical(rebuilt) == canonical(comparable_payload(new))
        assert payloads_equal(rebuilt, new)

    @pytest.mark.parametrize("seed", range(10))
    def test_apply_from_empty_prior(self, seed):
        """old=None (the initial snapshot): every group is an add and
        the envelope must be carried."""
        rng = random.Random(1000 + seed)
        new = random_payload(rng, key_pool_for(rng))
        diff = diff_results(None, new, watermark=1)
        assert all(op == "add" for op, _ in diff.ops)
        assert diff.envelope is not None
        assert canonical(apply_diff(diff, None)) == canonical(comparable_payload(new))

    @pytest.mark.parametrize("seed", range(10))
    def test_chain_composition(self, seed):
        """Composing a chain of diffs from an empty prior reproduces
        every intermediate payload -- the replay contract the
        subscription ledger relies on."""
        rng = random.Random(2000 + seed)
        pool = key_pool_for(rng)
        payloads = [random_payload(rng, pool) for _ in range(6)]
        previous = None
        state = None
        for watermark, payload in enumerate(payloads, start=1):
            diff = diff_results(previous, payload, watermark=watermark)
            state = apply_diff(diff, state)
            assert canonical(state) == canonical(comparable_payload(payload))
            previous = payload

    @pytest.mark.parametrize("seed", range(10))
    def test_serde_roundtrip_preserves_application(self, seed):
        """A diff surviving JSON (to_dict -> dumps -> loads -> from_dict)
        applies identically to the in-memory one."""
        rng = random.Random(3000 + seed)
        pool = key_pool_for(rng)
        old = random_payload(rng, pool)
        new = random_payload(rng, pool)
        diff = diff_results(old, new, watermark=7)
        wired = ResultDiff.from_dict(json.loads(json.dumps(diff.to_dict())))
        assert canonical(apply_diff(wired, old)) == canonical(apply_diff(diff, old))
        assert wired.is_empty == diff.is_empty


class TestEmptyDiffEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_empty_diff_iff_equal_payloads(self, seed):
        """is_empty <=> the two payloads are bit-identical modulo
        volatile fields (both directions)."""
        rng = random.Random(4000 + seed)
        pool = key_pool_for(rng)
        payload = random_payload(rng, pool)
        twin = json.loads(json.dumps(payload))
        twin["elapsed_seconds"] = payload["elapsed_seconds"] + 1.0
        twin["evaluations"] = payload["evaluations"] + 99
        twin["metadata"] = {"other": "noise"}
        assert diff_results(payload, twin, watermark=2).is_empty
        assert payloads_equal(payload, twin)

        other = random_payload(rng, pool)
        diff = diff_results(payload, other, watermark=3)
        assert diff.is_empty == payloads_equal(payload, other)

    def test_volatile_fields_never_reach_a_diff(self):
        rng = random.Random(99)
        payload = random_payload(rng, key_pool_for(rng))
        diff = diff_results(None, payload, watermark=1)
        assert diff.envelope is not None
        for volatile in VOLATILE_RESULT_FIELDS:
            assert volatile not in diff.envelope
        rebuilt = apply_diff(diff, None)
        for volatile in VOLATILE_RESULT_FIELDS:
            assert volatile not in rebuilt

    def test_envelope_omitted_when_only_groups_change(self):
        rng = random.Random(5)
        pool = key_pool_for(rng)
        old = random_payload(rng, pool)
        new = json.loads(json.dumps(old))
        new["groups"] = new["groups"] + [
            {"predicates": [["fresh-col", "fresh-val"]], "tuple_indices": [1, 2]}
        ]
        diff = diff_results(old, new, watermark=4)
        assert diff.envelope is None  # unchanged: reuse the old one
        assert canonical(apply_diff(diff, old)) == canonical(comparable_payload(new))


class TestDiffClassification:
    def test_keep_add_rescore_drop(self):
        old = {
            "problem": {"name": "p"},
            "algorithm": "exact",
            "groups": [
                {"predicates": [["a", "1"]], "tuple_indices": [1, 2]},
                {"predicates": [["b", "2"]], "tuple_indices": [3]},
                {"predicates": [["c", "3"]], "tuple_indices": [4]},
            ],
            "objective_value": 1.0,
        }
        new = {
            "problem": {"name": "p"},
            "algorithm": "exact",
            "groups": [
                {"predicates": [["a", "1"]], "tuple_indices": [1, 2]},  # keep
                {"predicates": [["b", "2"]], "tuple_indices": [3, 9]},  # rescore
                {"predicates": [["d", "4"]], "tuple_indices": [5]},  # add
            ],
            "objective_value": 1.0,
        }
        diff = diff_results(old, new, watermark=10)
        assert [op for op, _ in diff.ops] == ["keep", "rescore", "add"]
        assert diff.dropped == ((("c", "3"),),)
        assert diff.envelope is None
        assert canonical(apply_diff(diff, old)) == canonical(comparable_payload(new))

    def test_keep_costs_only_the_key(self):
        """A kept group's wire cost is its predicate key, not its
        tuple list."""
        old = {
            "algorithm": "exact",
            "groups": [{"predicates": [["a", "1"]], "tuple_indices": list(range(100))}],
        }
        diff = diff_results(old, old, watermark=2)
        assert diff.to_dict()["ops"] == [["keep", [["a", "1"]]]]


class TestDiffErrors:
    def test_apply_rejects_keep_of_absent_group(self):
        diff = ResultDiff(watermark=1, ops=((("keep"), (("a", "1"),)),), dropped=())
        with pytest.raises(SpecValidationError):
            apply_diff(diff, {"algorithm": "exact", "groups": []})

    def test_apply_rejects_drop_of_absent_group(self):
        diff = ResultDiff(
            watermark=1, ops=(), dropped=(((("a", "1")),),), envelope={"algorithm": "x"}
        )
        with pytest.raises(SpecValidationError):
            apply_diff(diff, {"algorithm": "exact", "groups": []})

    def test_apply_from_none_requires_envelope(self):
        diff = ResultDiff(watermark=1, ops=(), dropped=())
        with pytest.raises(SpecValidationError):
            apply_diff(diff, None)

    def test_from_dict_rejects_unknown_op(self):
        with pytest.raises(SpecValidationError):
            ResultDiff.from_dict({"watermark": 1, "ops": [["mutate", {}]], "dropped": []})

    def test_from_dict_rejects_malformed_payload(self):
        with pytest.raises(SpecValidationError):
            ResultDiff.from_dict({"ops": []})  # no watermark
