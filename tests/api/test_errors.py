"""The typed error taxonomy and its wire payload round-trip."""

from __future__ import annotations

import time

import pytest

from repro.api import (
    ApiError,
    CapabilityMismatchError,
    SolveTimeoutError,
    SpecValidationError,
    UnknownCorpusError,
    UnknownRouteError,
    api_error_from_payload,
    run_with_timeout,
)
from repro.core.exceptions import ReproError

TAXONOMY = [
    (SpecValidationError, "validation", 422),
    (UnknownCorpusError, "unknown-corpus", 404),
    (UnknownRouteError, "unknown-route", 404),
    (CapabilityMismatchError, "capability-mismatch", 409),
    (SolveTimeoutError, "timeout", 504),
    (ApiError, "internal", 500),
]


class TestTaxonomy:
    @pytest.mark.parametrize("cls, code, status", TAXONOMY)
    def test_codes_and_statuses_are_stable(self, cls, code, status):
        error = cls("boom", details={"hint": "x"})
        assert error.code == code
        assert error.status == status
        assert isinstance(error, ReproError)

    @pytest.mark.parametrize("cls, code, status", TAXONOMY)
    def test_payload_round_trip_restores_the_class(self, cls, code, status):
        error = cls("something went wrong", details={"corpus": "movies"})
        payload = error.to_payload()
        assert payload["error"]["code"] == code
        assert payload["error"]["status"] == status
        back = api_error_from_payload(payload)
        assert type(back) is cls
        assert back.message == "something went wrong"
        assert back.details == {"corpus": "movies"}

    def test_unknown_code_degrades_to_base_class(self):
        back = api_error_from_payload(
            {"error": {"code": "rate-limited", "status": 429, "message": "slow down"}}
        )
        assert type(back) is ApiError
        assert back.details["code"] == "rate-limited"

    def test_malformed_payload_degrades_to_base_class(self):
        assert isinstance(api_error_from_payload({"error": "?"}), ApiError)


class TestRunWithTimeout:
    def test_no_timeout_runs_inline(self):
        assert run_with_timeout(lambda: 42, None, "inline") == 42

    def test_fast_call_beats_the_budget(self):
        assert run_with_timeout(lambda: "ok", 5.0, "fast") == "ok"

    def test_slow_call_raises_typed_timeout(self):
        with pytest.raises(SolveTimeoutError, match="did not finish"):
            run_with_timeout(lambda: time.sleep(2.0), 0.05, "slow")

    def test_worker_exception_propagates(self):
        def boom():
            raise ValueError("from worker")

        with pytest.raises(ValueError, match="from worker"):
            run_with_timeout(boom, 5.0, "boom")

    def test_nonpositive_budget_is_a_validation_error(self):
        with pytest.raises(SpecValidationError, match="positive"):
            run_with_timeout(lambda: 1, 0.0, "zero")
