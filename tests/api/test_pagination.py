"""Paginated and NDJSON-streamed solve results: windowing + round-trips."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    HttpClient,
    LocalClient,
    PageSpec,
    ProblemSpec,
    ResultPage,
    SpecValidationError,
    merge_result_pages,
)
from repro.api.service import result_from_ndjson, result_ndjson_lines
from repro.core.enumeration import GroupEnumerationConfig
from repro.core.problem import table1_problem
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import TagDMHttpServer, TagDMServer

SEED = 7


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """Server + front-end + pooled client over a 4-group solve."""
    root = tmp_path_factory.mktemp("page-root")
    dataset = generate_movielens_style(n_users=60, n_items=120, n_actions=600, seed=SEED)
    server = TagDMServer(
        root,
        enumeration=GroupEnumerationConfig(min_support=5, max_groups=60),
        seed=SEED,
    )
    shard = server.add_corpus("movies", dataset)
    problem = table1_problem(1, k=4, min_support=shard.session.default_support())
    spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")
    front = TagDMHttpServer(server).start()
    client = HttpClient(front.url, request_timeout=60.0)
    yield server, shard, front, client, spec
    client.close()
    front.stop()
    server.close()


def groups_key(result):
    return [
        (str(group.description), group.tuple_indices) for group in result.groups
    ]


class TestPageSpec:
    def test_rejects_bad_values(self):
        for page, size in ((0, 5), (-1, 5), (1, 0), (1, -3), (True, 5), (1, True)):
            with pytest.raises(SpecValidationError):
                PageSpec(page=page, page_size=size)

    def test_from_query_defaults(self):
        assert PageSpec.from_query({}) is None
        window = PageSpec.from_query({"page": "2"})
        assert window.page == 2 and window.page_size == 50
        window = PageSpec.from_query({"page_size": "7"})
        assert window.page == 1 and window.page_size == 7
        with pytest.raises(SpecValidationError):
            PageSpec.from_query({"page": "two"})

    def test_paginate_windows_and_envelope(self):
        payload = {"groups": list(range(7)), "objective_value": 1.0}
        first = PageSpec(page=1, page_size=3).paginate(payload)
        assert first["groups"] == [0, 1, 2]
        assert first["pagination"] == {
            "page": 1,
            "page_size": 3,
            "total_groups": 7,
            "total_pages": 3,
            "has_more": True,
        }
        last = PageSpec(page=3, page_size=3).paginate(payload)
        assert last["groups"] == [6] and last["pagination"]["has_more"] is False
        beyond = PageSpec(page=9, page_size=3).paginate(payload)
        assert beyond["groups"] == [] and beyond["pagination"]["has_more"] is False
        # the source payload is never mutated
        assert payload["groups"] == list(range(7)) and "pagination" not in payload


class TestNdjsonSerde:
    def test_round_trip(self):
        payload = {
            "groups": [{"predicates": [["g", "x"]], "tuple_indices": [1, 2]}],
            "objective_value": 0.5,
            "algorithm": "sm-lsh-fo",
        }
        lines = list(result_ndjson_lines(payload))
        assert len(lines) == 2  # envelope + one group
        assert result_from_ndjson(lines) == payload

    def test_truncated_stream_detected(self):
        payload = {"groups": [{"a": 1}, {"a": 2}], "objective_value": 0.5}
        lines = list(result_ndjson_lines(payload))
        with pytest.raises(SpecValidationError, match="truncated"):
            result_from_ndjson(lines[:-1])

    def test_malformed_streams_rejected(self):
        with pytest.raises(SpecValidationError, match="empty"):
            result_from_ndjson([])
        with pytest.raises(SpecValidationError, match="envelope"):
            result_from_ndjson([json.dumps({"kind": "group", "group": {}})])
        with pytest.raises(SpecValidationError, match="malformed"):
            result_from_ndjson([b"{nope"])


class TestWirePagination:
    def test_pages_merge_to_unpaginated(self, stack):
        _server, _shard, _front, client, spec = stack
        full = client.solve("movies", spec)
        assert len(full.groups) == 4  # meaningful pagination needs groups
        pages = list(client.solve_pages("movies", spec, page_size=3))
        assert [entry.page for entry in pages] == [1, 2]
        assert pages[0].has_more and not pages[1].has_more
        assert all(entry.total_groups == 4 for entry in pages)
        merged = merge_result_pages(pages)
        assert groups_key(merged) == groups_key(full)
        assert merged.objective_value == full.objective_value

    def test_single_page_beyond_end_is_empty(self, stack):
        _server, _shard, _front, client, spec = stack
        page = client.solve_page("movies", spec, page=9, page_size=3)
        assert page.result.groups == () and not page.has_more

    def test_local_and_http_pages_agree(self, stack):
        _server, shard, _front, client, spec = stack
        local = LocalClient({"movies": shard.session})
        for wire, inproc in zip(
            client.solve_pages("movies", spec, page_size=2),
            local.solve_pages("movies", spec, page_size=2),
        ):
            assert groups_key(wire.result) == groups_key(inproc.result)
            assert wire.total_pages == inproc.total_pages == 2

    def test_stream_solve_is_bit_identical(self, stack):
        _server, _shard, _front, client, spec = stack
        plain = client.solve("movies", spec)
        streamed = client.solve_stream("movies", spec)
        assert groups_key(streamed) == groups_key(plain)
        assert streamed.objective_value == plain.objective_value

    def test_stream_and_page_are_mutually_exclusive(self, stack):
        _server, _shard, front, _client, spec = stack
        import urllib.error
        import urllib.request

        body = json.dumps(spec.to_dict()).encode("utf-8")
        request = urllib.request.Request(
            front.url + "/corpora/movies/solve?page=1&stream=ndjson",
            data=body,
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30.0)
        assert info.value.code == 422

    def test_bad_stream_value_rejected(self, stack):
        _server, _shard, front, _client, spec = stack
        import urllib.error
        import urllib.request

        body = json.dumps(spec.to_dict()).encode("utf-8")
        request = urllib.request.Request(
            front.url + "/corpora/movies/solve?stream=csv",
            data=body,
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30.0)
        assert info.value.code == 422

    def test_connection_pool_reuses_sockets(self, stack):
        _server, _shard, _front, client, _spec = stack
        for _ in range(3):
            client.health()
        stats = client.pool.stats()
        assert stats["reused"] >= 2
        assert stats["opened"] <= stats["opened"] + stats["reused"]


class TestMergeResultPages:
    def test_rejects_out_of_order_and_drift(self, stack):
        _server, _shard, _front, client, spec = stack
        pages = list(client.solve_pages("movies", spec, page_size=2))
        with pytest.raises(SpecValidationError, match="out of order"):
            merge_result_pages(list(reversed(pages)))
        drifted = ResultPage(
            result=pages[1].result,
            page=2,
            page_size=2,
            total_groups=99,
            total_pages=2,
            has_more=False,
        )
        with pytest.raises(SpecValidationError, match="different solve"):
            merge_result_pages([pages[0], drifted])
        with pytest.raises(SpecValidationError, match="zero"):
            merge_result_pages([])
