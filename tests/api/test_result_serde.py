"""MiningResult wire round-trips: null and non-null, every Table-1 instance."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.problem import TABLE1_PROBLEMS, table1_problem
from repro.core.result import MiningResult, json_safe


def wire_trip(payload):
    return json.loads(json.dumps(payload))


def assert_result_equal(back: MiningResult, result: MiningResult) -> None:
    assert back.problem == result.problem
    assert back.algorithm == result.algorithm
    assert [g.description for g in back.groups] == [g.description for g in result.groups]
    assert [g.tuple_indices for g in back.groups] == [
        g.tuple_indices for g in result.groups
    ]
    assert back.objective_value == result.objective_value
    assert back.constraint_scores == result.constraint_scores
    assert back.support == result.support
    assert back.feasible == result.feasible
    assert back.elapsed_seconds == result.elapsed_seconds
    assert back.evaluations == result.evaluations


class TestSolvedResultRoundTrip:
    @pytest.fixture(scope="class")
    def solved(self, prepared_session):
        """One solved result per Table-1 problem over the shared session."""
        results = {}
        support = prepared_session.default_support()
        for problem_id in sorted(TABLE1_PROBLEMS):
            problem = table1_problem(problem_id, k=3, min_support=support)
            results[problem_id] = prepared_session.solve(problem, algorithm="auto")
        return results

    @pytest.mark.parametrize("problem_id", sorted(TABLE1_PROBLEMS))
    def test_table1_result_survives_json(self, solved, problem_id):
        result = solved[problem_id]
        back = MiningResult.from_dict(wire_trip(result.to_dict()))
        assert_result_equal(back, result)

    @pytest.mark.parametrize("problem_id", sorted(TABLE1_PROBLEMS))
    def test_rehydration_with_dataset_restores_group_aggregates(
        self, solved, problem_id, movielens_dataset
    ):
        result = solved[problem_id]
        back = MiningResult.from_dict(
            wire_trip(result.to_dict()), dataset=movielens_dataset
        )
        assert [g.user_ids for g in back.groups] == [g.user_ids for g in result.groups]
        assert [g.item_ids for g in back.groups] == [g.item_ids for g in result.groups]
        assert [g.tags for g in back.groups] == [g.tags for g in result.groups]

    def test_metadata_survives_as_plain_json(self, solved):
        payload = wire_trip(solved[1].to_dict())
        assert isinstance(payload["metadata"], dict)
        back = MiningResult.from_dict(payload)
        assert back.metadata == payload["metadata"]


class TestNullResultRoundTrip:
    def test_null_result_survives_json(self):
        problem = table1_problem(3, k=3, min_support=50)
        result = MiningResult(
            problem=problem,
            algorithm="sm-lsh-fi",
            groups=(),
            objective_value=0.0,
            metadata={"relaxations": 8},
        )
        back = MiningResult.from_dict(wire_trip(result.to_dict()))
        assert back.is_empty
        assert not back.feasible
        assert_result_equal(back, result)


class TestJsonSafe:
    def test_numpy_scalars_and_arrays_become_plain_types(self):
        payload = json_safe(
            {
                "bits": np.int64(10),
                "score": np.float32(0.5),
                "flag": np.bool_(True),
                "vector": np.arange(3),
                "pair": (1, 2),
                "names": {"b", "a"},
            }
        )
        assert payload == {
            "bits": 10,
            "score": 0.5,
            "flag": True,
            "vector": [0, 1, 2],
            "pair": [1, 2],
            "names": ["a", "b"],
        }
        json.dumps(payload)  # must be encodable as-is

    def test_unknown_objects_degrade_to_strings(self):
        class Weird:
            def __str__(self):
                return "weird"

        assert json_safe({"x": Weird()}) == {"x": "weird"}
