"""Round-trip and validation tests for the wire-native problem specs."""

from __future__ import annotations

import json

import pytest

from repro.api import CapabilityMismatchError, ProblemSpec, SpecValidationError
from repro.core.exceptions import InvalidProblemError
from repro.core.measures import Criterion, Dimension
from repro.core.problem import (
    Constraint,
    Objective,
    TABLE1_PROBLEMS,
    TagDMProblem,
    enumerate_problem_instances,
    table1_problem,
)


def wire_trip(payload):
    """Simulate the process boundary: encode to JSON text and back."""
    return json.loads(json.dumps(payload))


class TestProblemRoundTrip:
    @pytest.mark.parametrize("problem_id", sorted(TABLE1_PROBLEMS))
    def test_every_table1_problem_survives_json(self, problem_id):
        problem = TABLE1_PROBLEMS[problem_id]
        assert TagDMProblem.from_dict(wire_trip(problem.to_dict())) == problem

    def test_table1_with_nondefault_parameters(self):
        problem = table1_problem(
            4, k=7, min_support=35, user_threshold=0.25, item_threshold=0.75, k_lo=2
        )
        assert TagDMProblem.from_dict(wire_trip(problem.to_dict())) == problem

    def test_every_enumerated_instance_survives_json(self):
        problems = enumerate_problem_instances(k=4, min_support=9, threshold=0.3)
        assert len(problems) == 98
        for problem in problems:
            assert TagDMProblem.from_dict(wire_trip(problem.to_dict())) == problem

    def test_constraint_and_objective_round_trip(self):
        constraint = Constraint(Dimension.USERS, Criterion.DIVERSITY, 0.4)
        objective = Objective(Dimension.TAGS, Criterion.SIMILARITY, weight=2.5)
        assert Constraint.from_dict(wire_trip(constraint.to_dict())) == constraint
        assert Objective.from_dict(wire_trip(objective.to_dict())) == objective

    @pytest.mark.parametrize(
        "payload",
        [
            "not-a-dict",
            {"objectives": []},
            {"objectives": [{"dimension": "tags", "criterion": "similarity"}], "k_lo": "3"},
            {"objectives": [{"dimension": "galaxies", "criterion": "similarity"}]},
            {"objectives": [{"dimension": "tags", "criterion": "entropy"}]},
            {
                "objectives": [{"dimension": "tags", "criterion": "similarity"}],
                "constraints": [{"dimension": "users", "criterion": "similarity", "threshold": 7}],
            },
            {"objectives": "similarity"},
            {"name": "", "objectives": [{"dimension": "tags", "criterion": "similarity"}]},
        ],
    )
    def test_malformed_problem_payloads_raise_invalid_problem(self, payload):
        with pytest.raises(InvalidProblemError):
            TagDMProblem.from_dict(payload)


class TestProblemSpec:
    def test_spec_round_trip_preserves_algorithm_and_options(self):
        spec = ProblemSpec.from_problem(
            table1_problem(2), algorithm="sm-lsh-fi", n_bits=8, n_tables=2
        )
        back = ProblemSpec.from_dict(wire_trip(spec.to_dict()))
        assert back == spec
        assert back.to_problem() == table1_problem(2)

    def test_from_problem_to_problem_identity(self):
        for problem in TABLE1_PROBLEMS.values():
            assert ProblemSpec.from_problem(problem).to_problem() == problem

    def test_validate_resolves_auto_like_the_session(self):
        _, name = ProblemSpec.from_problem(table1_problem(1)).validate()
        assert name == "sm-lsh-fo"
        _, name = ProblemSpec.from_problem(table1_problem(4)).validate()
        assert name == "dv-fdp-fo"

    def test_auto_never_fails_its_own_capability_check(self):
        """``auto`` must resolve to an admissible solver for every
        well-formed instance -- including diversity objectives on
        non-tag dimensions (which route to the FDP family)."""
        for problem in enumerate_problem_instances(k=3, min_support=0, threshold=0.5):
            _, name = ProblemSpec.from_problem(problem).validate()
            assert name in ("sm-lsh-fo", "dv-fdp-fo")
        users_diversity = TagDMProblem(
            name="users-div",
            constraints=(),
            objectives=(Objective(Dimension.USERS, Criterion.DIVERSITY),),
        )
        _, name = ProblemSpec.from_problem(users_diversity).validate()
        assert name == "dv-fdp-fo"

    def test_unknown_algorithm_is_a_validation_error(self):
        spec = ProblemSpec.from_problem(table1_problem(1), algorithm="quantum-anneal")
        with pytest.raises(SpecValidationError, match="unknown algorithm"):
            spec.validate()

    def test_unaccepted_option_is_a_validation_error(self):
        spec = ProblemSpec.from_problem(table1_problem(1), algorithm="exact", n_bits=8)
        with pytest.raises(SpecValidationError, match="does not accept"):
            spec.validate()

    def test_seed_option_is_rejected(self):
        spec = ProblemSpec.from_problem(table1_problem(1), algorithm="sm-lsh-fo", seed=3)
        with pytest.raises(SpecValidationError, match="seed"):
            spec.validate()

    def test_non_scalar_option_is_rejected(self):
        spec = ProblemSpec.from_problem(
            table1_problem(1), algorithm="sm-lsh-fo", n_bits=[8, 10]
        )
        with pytest.raises(SpecValidationError, match="JSON scalar"):
            spec.validate()

    def test_capability_mismatch_lsh_for_diversity_goal(self):
        spec = ProblemSpec.from_problem(table1_problem(4), algorithm="sm-lsh-fo")
        with pytest.raises(CapabilityMismatchError):
            spec.validate()

    def test_capability_mismatch_fdp_for_pure_similarity_goal(self):
        spec = ProblemSpec.from_problem(table1_problem(1), algorithm="dv-fdp-fo")
        with pytest.raises(CapabilityMismatchError):
            spec.validate()

    def test_capability_mismatch_plain_variant_with_constraints(self):
        spec = ProblemSpec.from_problem(table1_problem(1), algorithm="sm-lsh")
        with pytest.raises(CapabilityMismatchError, match="ignores hard constraints"):
            spec.validate()

    def test_exact_solves_every_table1_instance(self):
        for problem in TABLE1_PROBLEMS.values():
            _, name = ProblemSpec.from_problem(problem, algorithm="exact").validate()
            assert name == "exact"

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {"algorithm": "exact"},
            {"problem": "p1"},
            {"problem": {}, "algorithm": ""},
            {"problem": {}, "options": ["n_bits"]},
        ],
    )
    def test_malformed_spec_payloads_raise_validation(self, payload):
        with pytest.raises(SpecValidationError):
            ProblemSpec.from_dict(payload)
