"""Shared fixtures for the test suite.

The heavier fixtures (synthetic corpus, prepared TagDM session) are
session-scoped: they are generated once and shared read-only by every
test that needs a realistic workload.
"""

from __future__ import annotations

import pytest

from repro.core import witness as _witness


def pytest_sessionfinish(session, exitstatus) -> None:
    """With TAGDM_LOCK_WITNESS armed, fail the run on any lock-order
    inversion recorded while the suite exercised the serving stack."""
    if not _witness.witness_enabled():
        return
    reports = _witness.get_witness().inversions()
    if reports:
        session.exitstatus = 1
        raise _witness.LockOrderViolation(
            f"{len(reports)} lock-order inversion(s) observed during the "
            "test session:\n\n" + "\n\n".join(reports)
        )

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.framework import TagDM
from repro.dataset.store import TaggingDataset
from repro.dataset.synthetic import MovieLensStyleConfig, MovieLensStyleGenerator


@pytest.fixture(scope="session")
def movielens_dataset() -> TaggingDataset:
    """A small but realistic MovieLens-style corpus (deterministic)."""
    config = MovieLensStyleConfig(
        n_users=80,
        n_items=160,
        n_actions=2000,
        n_actors=40,
        n_directors=20,
        seed=99,
    )
    return MovieLensStyleGenerator(config).generate(name="test-corpus")


@pytest.fixture(scope="session")
def prepared_session(movielens_dataset: TaggingDataset) -> TagDM:
    """A prepared TagDM session over the shared corpus (capped groups)."""
    session = TagDM(
        movielens_dataset,
        enumeration=GroupEnumerationConfig(min_support=5, max_groups=80),
        signature_backend="frequency",
        signature_dimensions=25,
        seed=7,
    )
    return session.prepare()


@pytest.fixture(scope="session")
def candidate_groups(prepared_session: TagDM):
    """The candidate groups of the shared session (signatures computed)."""
    return prepared_session.groups


@pytest.fixture()
def tiny_dataset() -> TaggingDataset:
    """A hand-built four-action dataset for precise assertions."""
    dataset = TaggingDataset(
        user_schema=("gender", "age"),
        item_schema=("genre",),
        name="tiny",
    )
    dataset.register_user("u1", {"gender": "male", "age": "teen"})
    dataset.register_user("u2", {"gender": "female", "age": "teen"})
    dataset.register_user("u3", {"gender": "male", "age": "adult"})
    dataset.register_item("i1", {"genre": "action"})
    dataset.register_item("i2", {"genre": "comedy"})
    dataset.add_action("u1", "i1", ["gun", "explosion"], rating=4.0)
    dataset.add_action("u2", "i1", ["violence", "gory"], rating=2.0)
    dataset.add_action("u3", "i2", ["funny", "witty"], rating=5.0)
    dataset.add_action("u1", "i2", ["funny", "gun"], rating=3.5)
    return dataset
