"""Tests for the CBS -> TagDM NP-completeness reduction (Theorem 1)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.complexity import (
    CbsInstance,
    decide_reduced_tagdm,
    has_complete_bipartite_subgraph,
    random_bipartite_instance,
    reduce_cbs_to_tagdm,
)


def build_instance(edges, n_left, n_right, n1, n2) -> CbsInstance:
    graph = nx.Graph()
    left = tuple(f"l{i}" for i in range(n_left))
    right = tuple(f"r{j}" for j in range(n_right))
    graph.add_nodes_from(left)
    graph.add_nodes_from(right)
    for i, j in edges:
        graph.add_edge(f"l{i}", f"r{j}")
    return CbsInstance(graph=graph, left=left, right=right, n1=n1, n2=n2)


class TestCbsInstanceValidation:
    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            build_instance([], 2, 2, 3, 1)
        with pytest.raises(ValueError):
            build_instance([], 2, 2, 1, 0)


class TestCbsDecision:
    def test_complete_bipartite_graph_is_yes(self):
        edges = [(i, j) for i in range(3) for j in range(3)]
        instance = build_instance(edges, 3, 3, 2, 2)
        assert has_complete_bipartite_subgraph(instance)

    def test_empty_graph_is_no(self):
        instance = build_instance([], 3, 3, 2, 2)
        assert not has_complete_bipartite_subgraph(instance)

    def test_partial_graph(self):
        # l0 and l1 both connect to r0 and r1; l2 connects only to r2.
        edges = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]
        instance_yes = build_instance(edges, 3, 3, 2, 2)
        assert has_complete_bipartite_subgraph(instance_yes)
        instance_no = build_instance(edges, 3, 3, 3, 2)
        assert not has_complete_bipartite_subgraph(instance_no)


class TestReductionConstruction:
    def test_dataset_shape(self):
        edges = [(0, 0), (1, 1)]
        instance = build_instance(edges, 2, 3, 1, 1)
        reduction = reduce_cbs_to_tagdm(instance)
        dataset = reduction.dataset
        assert dataset.n_users == 2
        assert dataset.n_items == 1
        assert dataset.n_actions == 2
        assert len(reduction.attribute_names) == 3
        assert reduction.k == 1
        assert reduction.min_support == 1

    def test_edge_indicator_values(self):
        edges = [(0, 0), (0, 1)]
        instance = build_instance(edges, 2, 2, 1, 1)
        reduction = reduce_cbs_to_tagdm(instance)
        attrs_l0 = reduction.dataset.user_attributes("user-l0")
        attrs_l1 = reduction.dataset.user_attributes("user-l1")
        assert attrs_l0 == {"a_r0": "1", "a_r1": "1"}
        # Non-edges get unique filler values, never "1" and never shared.
        assert "1" not in attrs_l1.values()
        assert len(set(attrs_l1.values())) == 2

    def test_filler_values_globally_unique(self):
        instance = build_instance([], 3, 3, 2, 1)
        reduction = reduce_cbs_to_tagdm(instance)
        all_values = [
            value
            for user in reduction.user_ids
            for value in reduction.dataset.user_attributes(user).values()
        ]
        assert len(all_values) == len(set(all_values))

    def test_similarity_threshold_formula(self):
        instance = build_instance([], 4, 5, 3, 2)
        reduction = reduce_cbs_to_tagdm(instance)
        assert reduction.similarity_threshold == 2 * 3  # n2 * C(3, 2)


class TestReductionEquivalence:
    def test_yes_instance_maps_to_yes(self):
        edges = [(i, j) for i in range(3) for j in range(2)]
        instance = build_instance(edges, 3, 3, 2, 2)
        reduction = reduce_cbs_to_tagdm(instance)
        assert has_complete_bipartite_subgraph(instance)
        assert decide_reduced_tagdm(reduction)

    def test_no_instance_maps_to_no(self):
        edges = [(0, 0), (1, 1), (2, 2)]
        instance = build_instance(edges, 3, 3, 2, 2)
        reduction = reduce_cbs_to_tagdm(instance)
        assert not has_complete_bipartite_subgraph(instance)
        assert not decide_reduced_tagdm(reduction)

    def test_n1_equal_one_special_case(self):
        edges = [(0, 0), (0, 1), (1, 0)]
        instance = build_instance(edges, 2, 2, 1, 2)
        reduction = reduce_cbs_to_tagdm(instance)
        assert has_complete_bipartite_subgraph(instance) == decide_reduced_tagdm(reduction)

    @given(
        seed=st.integers(0, 200),
        edge_probability=st.floats(0.1, 0.9),
        n1=st.integers(1, 3),
        n2=st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_reduction_preserves_the_answer(self, seed, edge_probability, n1, n2):
        """CBS has a solution iff the reduced TagDM instance does (Theorem 1)."""
        instance = random_bipartite_instance(
            n_left=4, n_right=4, edge_probability=edge_probability, n1=n1, n2=n2, seed=seed
        )
        reduction = reduce_cbs_to_tagdm(instance)
        assert has_complete_bipartite_subgraph(instance) == decide_reduced_tagdm(reduction)
