"""Tests for candidate-group enumeration."""

from __future__ import annotations

import pytest

from repro.core.enumeration import (
    GroupEnumerationConfig,
    enumerate_cross_groups,
    enumerate_full_conjunction_groups,
    enumerate_groups,
    enumerate_partial_conjunction_groups,
)
from repro.core.groups import group_support


class TestConfigValidation:
    def test_defaults(self):
        config = GroupEnumerationConfig()
        assert config.min_support == 5
        assert config.mode == "partial"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            GroupEnumerationConfig(min_support=0)
        with pytest.raises(ValueError):
            GroupEnumerationConfig(mode="everything")
        with pytest.raises(ValueError):
            GroupEnumerationConfig(max_predicates=0)
        with pytest.raises(ValueError):
            GroupEnumerationConfig(max_groups=0)


class TestFullConjunctions:
    def test_groups_are_disjoint_and_cover_counted_tuples(self, tiny_dataset):
        groups = enumerate_full_conjunction_groups(tiny_dataset, min_support=1)
        # Every tuple belongs to exactly one full-conjunction group.
        assert group_support(groups) == tiny_dataset.n_actions
        assert sum(group.support for group in groups) == tiny_dataset.n_actions

    def test_min_support_prunes(self, tiny_dataset):
        all_groups = enumerate_full_conjunction_groups(tiny_dataset, min_support=1)
        pruned = enumerate_full_conjunction_groups(tiny_dataset, min_support=2)
        assert len(pruned) < len(all_groups)

    def test_descriptions_use_all_columns(self, tiny_dataset):
        groups = enumerate_full_conjunction_groups(tiny_dataset, min_support=1)
        assert all(len(group.description) == 3 for group in groups)

    def test_column_restriction(self, tiny_dataset):
        groups = enumerate_full_conjunction_groups(
            tiny_dataset, min_support=1, columns=["user.gender"]
        )
        descriptions = {str(group.description) for group in groups}
        assert descriptions == {"{user.gender=male}", "{user.gender=female}"}

    def test_requires_columns(self, tiny_dataset):
        with pytest.raises(ValueError):
            enumerate_full_conjunction_groups(tiny_dataset, columns=[])

    def test_sorted_by_support_descending(self, movielens_dataset):
        groups = enumerate_full_conjunction_groups(movielens_dataset, min_support=1)
        supports = [group.support for group in groups]
        assert supports == sorted(supports, reverse=True)


class TestPartialConjunctions:
    def test_includes_single_and_pair_predicates(self, tiny_dataset):
        groups = enumerate_partial_conjunction_groups(
            tiny_dataset, min_support=1, max_predicates=2
        )
        sizes = {len(group.description) for group in groups}
        assert sizes == {1, 2}

    def test_single_attribute_group_support_matches_dataset(self, tiny_dataset):
        groups = enumerate_partial_conjunction_groups(
            tiny_dataset, min_support=1, max_predicates=1
        )
        by_description = {str(group.description): group for group in groups}
        assert by_description["{user.gender=male}"].support == 3
        assert by_description["{item.genre=comedy}"].support == 2

    def test_max_predicates_larger_than_columns_is_clamped(self, tiny_dataset):
        groups = enumerate_partial_conjunction_groups(
            tiny_dataset, min_support=1, max_predicates=10
        )
        assert max(len(group.description) for group in groups) == 3

    def test_min_support_pruning(self, movielens_dataset):
        loose = enumerate_partial_conjunction_groups(movielens_dataset, min_support=5)
        strict = enumerate_partial_conjunction_groups(movielens_dataset, min_support=25)
        assert len(strict) < len(loose)
        assert all(group.support >= 25 for group in strict)


class TestCrossGroups:
    def test_every_group_has_one_user_and_one_item_predicate(self, tiny_dataset):
        groups = enumerate_cross_groups(tiny_dataset, min_support=1)
        for group in groups:
            assert len(group.description.user_predicates) == 1
            assert len(group.description.item_predicates) == 1

    def test_requires_both_sides(self, tiny_dataset):
        with pytest.raises(ValueError):
            enumerate_cross_groups(tiny_dataset, columns=["user.gender"])

    def test_counts_match_manual_filtering(self, tiny_dataset):
        groups = enumerate_cross_groups(tiny_dataset, min_support=1)
        by_description = {str(group.description): group for group in groups}
        male_action = by_description["{item.genre=action, user.gender=male}"]
        assert male_action.support == tiny_dataset.support(
            {"user.gender": "male", "item.genre": "action"}
        )


class TestEnumerateGroups:
    def test_dispatches_by_mode(self, tiny_dataset):
        full = enumerate_groups(tiny_dataset, GroupEnumerationConfig(mode="full", min_support=1))
        partial = enumerate_groups(
            tiny_dataset, GroupEnumerationConfig(mode="partial", min_support=1)
        )
        cross = enumerate_groups(
            tiny_dataset, GroupEnumerationConfig(mode="cross", min_support=1)
        )
        assert {len(g.description) for g in full} == {3}
        assert {len(g.description) for g in partial} <= {1, 2}
        assert {len(g.description) for g in cross} == {2}

    def test_max_groups_caps_output(self, movielens_dataset):
        config = GroupEnumerationConfig(min_support=5, max_groups=10)
        groups = enumerate_groups(movielens_dataset, config)
        assert len(groups) == 10

    def test_default_config_used_when_none(self, movielens_dataset):
        groups = enumerate_groups(movielens_dataset, None)
        assert groups
        assert all(group.support >= 5 for group in groups)

    def test_groups_carry_aggregated_tags(self, movielens_dataset):
        groups = enumerate_groups(
            movielens_dataset, GroupEnumerationConfig(min_support=5, max_groups=5)
        )
        for group in groups:
            assert len(group.tags) >= group.support  # at least one tag per tuple
