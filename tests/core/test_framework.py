"""Tests for the TagDM session (framework orchestration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.exceptions import NotFittedError
from repro.core.framework import TagDM
from repro.core.problem import table1_problem
from repro.dataset.store import TaggingDataset


class TestPreparation:
    def test_properties_require_prepare(self, movielens_dataset):
        session = TagDM(movielens_dataset)
        assert not session.is_prepared
        with pytest.raises(NotFittedError):
            _ = session.groups
        with pytest.raises(NotFittedError):
            _ = session.signatures
        with pytest.raises(NotFittedError):
            session.solve(table1_problem(1))

    def test_prepare_builds_groups_and_signatures(self, prepared_session):
        assert prepared_session.is_prepared
        assert prepared_session.n_groups == len(prepared_session.groups)
        assert prepared_session.signatures.shape == (prepared_session.n_groups, 25)
        assert all(group.has_signature() for group in prepared_session.groups)

    def test_prepare_fails_when_no_groups_survive(self):
        dataset = TaggingDataset(user_schema=("gender",), item_schema=("kind",))
        dataset.register_user("u", {"gender": "male"})
        dataset.register_item("i", {"kind": "x"})
        dataset.add_action("u", "i", ["t"])
        session = TagDM(dataset, enumeration=GroupEnumerationConfig(min_support=10))
        with pytest.raises(ValueError):
            session.prepare()

    def test_default_support_is_one_percent(self, prepared_session, movielens_dataset):
        assert prepared_session.default_support() == max(
            1, round(0.01 * movielens_dataset.n_actions)
        )
        assert prepared_session.default_support(0.1) == max(
            1, round(0.1 * movielens_dataset.n_actions)
        )

    def test_matrix_cache_is_shared_and_reset_on_prepare(self, movielens_dataset):
        session = TagDM(
            movielens_dataset,
            enumeration=GroupEnumerationConfig(min_support=10, max_groups=30),
        ).prepare()
        cache_a = session.matrix_cache()
        assert session.matrix_cache() is cache_a
        session.prepare()
        assert session.matrix_cache() is not cache_a


class TestSolving:
    def test_solve_with_named_algorithm(self, prepared_session):
        problem = table1_problem(
            1, k=3, min_support=prepared_session.default_support()
        )
        result = prepared_session.solve(problem, algorithm="sm-lsh-fo")
        assert result.algorithm == "sm-lsh-fo"
        assert result.problem is problem

    def test_solve_auto_picks_family_by_goal(self, prepared_session):
        support = prepared_session.default_support()
        similarity_result = prepared_session.solve(
            table1_problem(1, k=3, min_support=support), algorithm="auto"
        )
        diversity_result = prepared_session.solve(
            table1_problem(6, k=3, min_support=support), algorithm="auto"
        )
        assert similarity_result.algorithm == "sm-lsh-fo"
        assert diversity_result.algorithm == "dv-fdp-fo"

    def test_solve_with_algorithm_instance(self, prepared_session):
        from repro.algorithms import DvFdpAlgorithm

        problem = table1_problem(6, k=3, min_support=prepared_session.default_support())
        result = prepared_session.solve(problem, algorithm=DvFdpAlgorithm())
        assert result.algorithm == "dv-fdp"

    def test_solve_unknown_algorithm(self, prepared_session):
        with pytest.raises(KeyError):
            prepared_session.solve(table1_problem(1), algorithm="quantum")

    def test_solve_all(self, prepared_session):
        support = prepared_session.default_support()
        problems = [table1_problem(i, k=3, min_support=support) for i in (1, 6)]
        results = prepared_session.solve_all(problems, algorithm="auto")
        assert set(results) == {"problem-1", "problem-6"}

    def test_algorithm_options_are_forwarded(self, prepared_session):
        problem = table1_problem(1, k=3, min_support=prepared_session.default_support())
        result = prepared_session.solve(problem, algorithm="sm-lsh-fo", n_bits=4)
        assert result.metadata["n_bits_initial"] == 4
