"""Tests for the concrete dual-mining comparison functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.functions import (
    default_function_suite,
    jaccard_items_similarity,
    structural_pairwise,
    structural_pairwise_matrix,
    structural_similarity,
    tag_signature_pairwise,
    tag_signature_pairwise_matrix,
    value_similarity,
)
from repro.core.groups import GroupDescription, TaggingActionGroup
from repro.core.measures import Criterion, Dimension


def make_group(predicates, users=(), items=(), signature=None, rows=()):
    group = TaggingActionGroup(
        description=GroupDescription.from_mapping(predicates),
        tuple_indices=tuple(rows),
        user_ids=frozenset(users),
        item_ids=frozenset(items),
        tags=(),
    )
    if signature is not None:
        group.signature = np.asarray(signature, dtype=float)
    return group


class TestValueSimilarity:
    def test_equal_values(self):
        assert value_similarity("action", "action") == 1.0

    def test_empty_values(self):
        assert value_similarity("", "abc") == 0.0

    def test_close_strings_score_higher_than_distant(self):
        assert value_similarity("new york", "new jersey") > value_similarity(
            "new york", "dallas"
        )

    def test_symmetric(self):
        assert value_similarity("comedy", "drama") == value_similarity("drama", "comedy")

    @given(st.text(max_size=12), st.text(max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, a, b):
        score = value_similarity(a, b)
        assert 0.0 <= score <= 1.0
        if a == b:
            assert score == 1.0


class TestStructuralSimilarity:
    def test_identical_descriptions(self):
        a = make_group({"user.gender": "male", "user.age": "teen"})
        b = make_group({"user.gender": "male", "user.age": "teen"})
        assert structural_similarity(a, b, Dimension.USERS) == pytest.approx(1.0)

    def test_half_matching_descriptions(self):
        a = make_group({"user.gender": "male", "user.age": "teen"})
        b = make_group({"user.gender": "male", "user.age": "56+"})
        score = structural_similarity(a, b, Dimension.USERS)
        assert 0.5 <= score < 1.0

    def test_no_shared_attributes_scores_zero(self):
        a = make_group({"user.gender": "male"})
        b = make_group({"user.age": "teen"})
        assert structural_similarity(a, b, Dimension.USERS) == 0.0

    def test_item_dimension_uses_item_predicates(self):
        a = make_group({"item.genre": "war", "user.gender": "male"})
        b = make_group({"item.genre": "war", "user.gender": "female"})
        assert structural_similarity(a, b, Dimension.ITEMS) == pytest.approx(1.0)

    def test_tags_dimension_rejected(self):
        a = make_group({"user.gender": "male"})
        with pytest.raises(ValueError):
            structural_similarity(a, a, Dimension.TAGS)

    def test_pairwise_diversity_is_complement(self):
        a = make_group({"user.gender": "male"})
        b = make_group({"user.gender": "female"})
        similarity = structural_pairwise(a, b, Dimension.USERS, Criterion.SIMILARITY)
        diversity = structural_pairwise(a, b, Dimension.USERS, Criterion.DIVERSITY)
        assert similarity + diversity == pytest.approx(1.0)


class TestSetOverlap:
    def test_jaccard_on_items(self):
        a = make_group({"user.gender": "male"}, items={"i1", "i2"})
        b = make_group({"user.gender": "female"}, items={"i2", "i3"})
        assert jaccard_items_similarity(a, b, Dimension.ITEMS) == pytest.approx(1 / 3)

    def test_jaccard_on_users(self):
        a = make_group({"item.genre": "war"}, users={"u1"})
        b = make_group({"item.genre": "drama"}, users={"u1", "u2"})
        assert jaccard_items_similarity(a, b, Dimension.USERS) == pytest.approx(0.5)

    def test_empty_sets(self):
        a = make_group({"user.gender": "male"})
        b = make_group({"user.gender": "female"})
        assert jaccard_items_similarity(a, b, Dimension.ITEMS) == 0.0

    def test_tags_dimension_rejected(self):
        a = make_group({"user.gender": "male"})
        with pytest.raises(ValueError):
            jaccard_items_similarity(a, a, Dimension.TAGS)


class TestTagSignaturePairwise:
    def test_identical_signatures(self):
        a = make_group({"user.gender": "male"}, signature=[1, 0, 1])
        b = make_group({"user.gender": "female"}, signature=[2, 0, 2])
        assert tag_signature_pairwise(a, b, Dimension.TAGS, Criterion.SIMILARITY) == pytest.approx(1.0)
        assert tag_signature_pairwise(a, b, Dimension.TAGS, Criterion.DIVERSITY) == pytest.approx(0.0)

    def test_orthogonal_signatures(self):
        a = make_group({"user.gender": "male"}, signature=[1, 0])
        b = make_group({"user.gender": "female"}, signature=[0, 1])
        assert tag_signature_pairwise(a, b, Dimension.TAGS, Criterion.SIMILARITY) == pytest.approx(0.0)
        assert tag_signature_pairwise(a, b, Dimension.TAGS, Criterion.DIVERSITY) == pytest.approx(1.0)

    def test_missing_signature_raises(self):
        a = make_group({"user.gender": "male"})
        b = make_group({"user.gender": "female"}, signature=[1, 0])
        with pytest.raises(RuntimeError):
            tag_signature_pairwise(a, b, Dimension.TAGS, Criterion.SIMILARITY)

    def test_wrong_dimension_rejected(self):
        a = make_group({"user.gender": "male"}, signature=[1, 0])
        with pytest.raises(ValueError):
            tag_signature_pairwise(a, a, Dimension.USERS, Criterion.SIMILARITY)


class TestVectorisedMatrices:
    def _groups(self):
        return [
            make_group({"user.gender": "male", "user.age": "teen"}, signature=[1, 0, 0]),
            make_group({"user.gender": "male", "user.age": "56+"}, signature=[0, 1, 0]),
            make_group({"user.gender": "female"}, signature=[1, 0, 0]),
            make_group({"item.genre": "war"}, signature=[0, 0, 1]),
        ]

    def test_structural_matrix_matches_pairwise_function(self):
        groups = self._groups()
        matrix = structural_pairwise_matrix(groups, Dimension.USERS, Criterion.SIMILARITY)
        for i in range(len(groups)):
            for j in range(len(groups)):
                if i == j:
                    continue
                expected = structural_pairwise(
                    groups[i], groups[j], Dimension.USERS, Criterion.SIMILARITY
                )
                assert matrix[i, j] == pytest.approx(expected, abs=1e-9)

    def test_structural_matrix_diversity_complement(self):
        groups = self._groups()
        similarity = structural_pairwise_matrix(groups, Dimension.USERS, Criterion.SIMILARITY)
        diversity = structural_pairwise_matrix(groups, Dimension.USERS, Criterion.DIVERSITY)
        assert np.allclose(similarity + diversity, 1.0)

    def test_tag_matrix_matches_pairwise_function(self):
        groups = self._groups()
        matrix = tag_signature_pairwise_matrix(groups, Dimension.TAGS, Criterion.SIMILARITY)
        for i in range(len(groups)):
            for j in range(len(groups)):
                if i == j:
                    continue
                expected = tag_signature_pairwise(
                    groups[i], groups[j], Dimension.TAGS, Criterion.SIMILARITY
                )
                assert matrix[i, j] == pytest.approx(expected, abs=1e-9)

    def test_tag_matrix_rejects_other_dimensions(self):
        with pytest.raises(ValueError):
            tag_signature_pairwise_matrix(self._groups(), Dimension.USERS, Criterion.SIMILARITY)


class TestFunctionSuite:
    def test_default_suite_wires_dimensions(self):
        suite = default_function_suite()
        assert suite.function_for(Dimension.TAGS).name == "tags-signature-cosine"
        assert suite.function_for(Dimension.USERS).name == "users-structural"
        assert suite.matrix_builder_for(Dimension.USERS) is not None
        assert suite.matrix_builder_for(Dimension.TAGS) is not None

    def test_set_overlap_variant(self):
        suite = default_function_suite(user_comparison="set-overlap")
        assert suite.function_for(Dimension.USERS).name == "users-set-overlap"
        assert suite.matrix_builder_for(Dimension.USERS) is None

    def test_unknown_comparison_rejected(self):
        with pytest.raises(ValueError):
            default_function_suite(user_comparison="semantic")
        with pytest.raises(ValueError):
            default_function_suite(item_comparison="semantic")

    def test_suite_score_and_pairwise(self):
        suite = default_function_suite()
        a = make_group({"user.gender": "male"}, signature=[1, 0])
        b = make_group({"user.gender": "male"}, signature=[1, 0])
        c = make_group({"user.gender": "female"}, signature=[0, 1])
        assert suite.pairwise(a, b, Dimension.USERS, Criterion.SIMILARITY) == pytest.approx(1.0)
        score = suite.score([a, b, c], Dimension.TAGS, Criterion.SIMILARITY)
        assert 0.0 <= score <= 1.0
