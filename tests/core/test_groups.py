"""Tests for group descriptions, tagging-action groups and group support."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.groups import (
    GroupDescription,
    TaggingActionGroup,
    build_group,
    group_support,
)


class TestGroupDescription:
    def test_from_mapping_sorts_predicates(self):
        description = GroupDescription.from_mapping(
            {"user.gender": "male", "item.genre": "action"}
        )
        assert description.predicates == (
            ("item.genre", "action"),
            ("user.gender", "male"),
        )

    def test_rejects_unprefixed_columns(self):
        with pytest.raises(ValueError):
            GroupDescription.from_mapping({"gender": "male"})

    def test_user_and_item_parts(self):
        description = GroupDescription.from_mapping(
            {"user.gender": "male", "user.age": "teen", "item.genre": "war"}
        )
        assert description.user_predicates == {"gender": "male", "age": "teen"}
        assert description.item_predicates == {"genre": "war"}
        assert description.is_user_describable
        assert description.is_item_describable

    def test_item_only_description(self):
        description = GroupDescription.from_mapping({"item.genre": "war"})
        assert not description.is_user_describable
        assert description.is_item_describable

    def test_str_rendering(self):
        description = GroupDescription.from_mapping({"user.gender": "male"})
        assert str(description) == "{user.gender=male}"
        assert str(GroupDescription(predicates=())) == "{*}"

    def test_hashable_and_equal(self):
        a = GroupDescription.from_mapping({"user.gender": "male"})
        b = GroupDescription.from_mapping({"user.gender": "male"})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_len_counts_predicates(self):
        description = GroupDescription.from_mapping(
            {"user.gender": "male", "item.genre": "war"}
        )
        assert len(description) == 2


class TestBuildGroup:
    def test_build_group_materialises_members(self, tiny_dataset):
        group = build_group(tiny_dataset, {"item.genre": "comedy"})
        assert group.support == 2
        assert group.tuple_indices == (2, 3)
        assert group.user_ids == frozenset({"u1", "u3"})
        assert group.item_ids == frozenset({"i2"})
        assert sorted(group.tags) == ["funny", "funny", "gun", "witty"]

    def test_build_group_empty_match(self, tiny_dataset):
        group = build_group(tiny_dataset, {"item.genre": "horror"})
        assert group.support == 0
        assert group.tags == ()

    def test_group_label_and_identity(self, tiny_dataset):
        group = build_group(tiny_dataset, {"user.gender": "male"})
        assert "user.gender=male" in group.label()
        same = build_group(tiny_dataset, {"user.gender": "male"})
        assert group == same
        assert hash(group) == hash(same)
        assert group != "not a group"


class TestSignatureHandling:
    def test_require_signature_raises_before_assignment(self, tiny_dataset):
        group = build_group(tiny_dataset, {"user.gender": "male"})
        assert not group.has_signature()
        with pytest.raises(RuntimeError):
            group.require_signature()

    def test_signature_round_trip(self, tiny_dataset):
        group = build_group(tiny_dataset, {"user.gender": "male"})
        group.signature = np.array([0.5, 0.5])
        assert group.has_signature()
        assert np.allclose(group.require_signature(), [0.5, 0.5])


class TestGroupSupport:
    def test_disjoint_groups_add_up(self, tiny_dataset):
        action = build_group(tiny_dataset, {"item.genre": "action"})
        comedy = build_group(tiny_dataset, {"item.genre": "comedy"})
        assert group_support([action, comedy]) == 4

    def test_overlapping_groups_counted_once(self, tiny_dataset):
        males = build_group(tiny_dataset, {"user.gender": "male"})
        comedy = build_group(tiny_dataset, {"item.genre": "comedy"})
        # Male tuples: {0, 2, 3}; comedy tuples: {2, 3}.
        assert group_support([males, comedy]) == 3

    def test_empty_set_has_zero_support(self):
        assert group_support([]) == 0

    @given(
        memberships=st.lists(
            st.lists(st.integers(0, 30), max_size=15), min_size=1, max_size=6
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_support_equals_union_size(self, memberships):
        groups = [
            TaggingActionGroup(
                description=GroupDescription(
                    predicates=(("user.g", str(position)),)
                ),
                tuple_indices=tuple(rows),
            )
            for position, rows in enumerate(memberships)
        ]
        expected = len(set().union(*(set(rows) for rows in memberships)))
        assert group_support(groups) == expected
