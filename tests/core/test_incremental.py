"""Tests for incremental session maintenance (the paper's future work)."""

from __future__ import annotations

import pytest

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.incremental import IncrementalTagDM
from repro.core.problem import table1_problem
from repro.dataset.store import TaggingDataset
from repro.dataset.synthetic import generate_movielens_style


def small_dataset() -> TaggingDataset:
    return generate_movielens_style(n_users=40, n_items=80, n_actions=600, seed=17)


@pytest.fixture()
def incremental():
    return IncrementalTagDM(
        small_dataset(),
        enumeration=GroupEnumerationConfig(min_support=5),
        signature_backend="frequency",
    ).prepare()


def action_for(dataset: TaggingDataset, row: int = 0, tags=("new-tag",)):
    """An insert payload reusing an existing user/item pair."""
    return {
        "user_id": dataset.user_of(row),
        "item_id": dataset.item_of(row),
        "tags": list(tags),
    }


class TestPreparationAndGuards:
    def test_insert_before_prepare_raises(self):
        session = IncrementalTagDM(small_dataset())
        with pytest.raises(RuntimeError):
            session.add_action("u", "i", ["t"])

    def test_new_user_requires_attributes(self, incremental):
        with pytest.raises(KeyError, match="user_attributes"):
            incremental.add_action(
                "brand-new-user", incremental.dataset.item_of(0), ["t"]
            )

    def test_new_item_requires_attributes(self, incremental):
        with pytest.raises(KeyError, match="item_attributes"):
            incremental.add_action(
                incremental.dataset.user_of(0), "brand-new-item", ["t"]
            )


class TestSingleInsert:
    def test_dataset_grows_and_groups_update(self, incremental):
        before_actions = incremental.dataset.n_actions
        before_groups = incremental.n_groups
        report = incremental.add_action(**action_for(incremental.dataset))
        assert incremental.dataset.n_actions == before_actions + 1
        assert report.actions_added == 1
        assert report.groups_updated >= 1
        assert incremental.n_groups >= before_groups

    def test_existing_group_membership_updated(self, incremental):
        dataset = incremental.dataset
        row_user = dataset.user_of(0)
        gender = dataset.user_attributes(row_user)["gender"]
        target = next(
            group
            for group in incremental.groups
            if dict(group.description.predicates) == {"user.gender": gender}
        )
        before_support = target.support
        incremental.add_action(**action_for(dataset))
        updated = next(
            group
            for group in incremental.groups
            if dict(group.description.predicates) == {"user.gender": gender}
        )
        assert updated.support == before_support + 1
        assert updated.has_signature()

    def test_new_user_and_item_registered(self, incremental):
        report = incremental.add_action(
            "fresh-user",
            "fresh-item",
            ["alpha", "beta"],
            user_attributes={
                "gender": "female",
                "age": "18-24",
                "occupation": "artist",
                "location": "NY",
            },
            item_attributes={
                "genre": "drama",
                "actor": "actor_9999",
                "director": "director_9999",
            },
        )
        assert report.new_users == ["fresh-user"]
        assert report.new_items == ["fresh-item"]
        assert incremental.dataset.has_user("fresh-user")
        assert incremental.dataset.has_item("fresh-item")

    def test_matrix_cache_invalidated(self, incremental):
        cache_before = incremental.session.matrix_cache()
        incremental.add_action(**action_for(incremental.dataset))
        assert incremental.session.matrix_cache() is not cache_before


class TestGroupCreation:
    def test_repeated_inserts_create_a_new_group(self, incremental):
        """A previously unseen attribute combination becomes a group once it
        crosses the minimum support threshold."""
        config_min_support = incremental.session.enumeration.min_support
        attributes = {
            "gender": "female",
            "age": "45-49",
            "occupation": "astronaut-candidate",
            "location": "WY",
        }
        item_attributes = {
            "genre": "western",
            "actor": "actor_unique",
            "director": "director_unique",
        }
        description = {"user.occupation": "astronaut-candidate"}
        assert not any(
            dict(group.description.predicates) == description
            for group in incremental.groups
        )
        created_total = 0
        for position in range(config_min_support):
            report = incremental.add_action(
                f"new-user-{position}",
                "new-item-western",
                ["frontier", "horse"],
                user_attributes=attributes,
                item_attributes=item_attributes,
            )
            created_total += report.groups_created
        assert any(
            dict(group.description.predicates) == description
            for group in incremental.groups
        )
        assert created_total >= 1

    def test_consistency_with_full_reenumeration(self):
        session = IncrementalTagDM(
            generate_movielens_style(n_users=20, n_items=40, n_actions=300, seed=4),
            enumeration=GroupEnumerationConfig(min_support=3),
            signature_backend="frequency",
        ).prepare()
        dataset = session.dataset
        for row in range(5):
            session.add_action(
                dataset.user_of(row), dataset.item_of(row), ["extra", f"t{row}"]
            )
        assert session.consistency_errors() == []


class TestBatchAndSolve:
    def test_add_actions_batch(self, incremental):
        dataset = incremental.dataset
        batch = [action_for(dataset, row) for row in range(4)]
        report = incremental.add_actions(batch)
        assert report.actions_added == 4

    def test_batch_invalidates_caches_once(self, incremental, monkeypatch):
        """Regression: a batch of n actions used to rebuild the pairwise /
        LSH caches n times; the batch path must invalidate exactly once."""
        calls = {"invalidate": 0}
        original = incremental.session.invalidate_caches

        def counting_invalidate():
            calls["invalidate"] += 1
            original()

        monkeypatch.setattr(
            incremental.session, "invalidate_caches", counting_invalidate
        )
        batch = [action_for(incremental.dataset, row) for row in range(10)]
        incremental.add_actions(batch)
        assert calls["invalidate"] == 1
        # A single insert still invalidates (once).
        incremental.add_action(**action_for(incremental.dataset))
        assert calls["invalidate"] == 2

    def test_batch_failure_still_invalidates(self, incremental, monkeypatch):
        """If the middle of a batch raises, the already-applied prefix must
        not be served from stale caches."""
        calls = {"invalidate": 0}
        original = incremental.session.invalidate_caches

        def counting_invalidate():
            calls["invalidate"] += 1
            original()

        monkeypatch.setattr(
            incremental.session, "invalidate_caches", counting_invalidate
        )
        dataset = incremental.dataset
        batch = [
            action_for(dataset, 0),
            {"user_id": "ghost-user", "item_id": dataset.item_of(0), "tags": ["x"]},
        ]
        before = dataset.n_actions
        with pytest.raises(KeyError):
            incremental.add_actions(batch)
        assert dataset.n_actions == before + 1  # the prefix stays applied
        assert calls["invalidate"] == 1

    def test_batch_matches_sequential_inserts(self):
        """One batch and n sequential add_action calls must leave identical
        sessions (groups, signatures, solve results)."""
        import numpy as np

        def build():
            return IncrementalTagDM(
                small_dataset(),
                enumeration=GroupEnumerationConfig(min_support=5),
                signature_backend="frequency",
            ).prepare()

        batched, sequential = build(), build()
        actions = [action_for(batched.dataset, row) for row in range(8)]
        batched.add_actions(actions)
        for action in actions:
            sequential.add_action(**action)
        assert [str(g.description) for g in batched.groups] == [
            str(g.description) for g in sequential.groups
        ]
        assert np.array_equal(
            batched.session.signatures, sequential.session.signatures
        )
        problem = table1_problem(6, k=3, min_support=batched.default_support())
        first = batched.solve(problem, algorithm="dv-fdp-fo")
        second = sequential.solve(problem, algorithm="dv-fdp-fo")
        assert first.objective_value == second.objective_value
        assert first.descriptions() == second.descriptions()

    def test_mutation_listeners_fire_once_per_call(self, incremental):
        seen = []
        incremental.add_mutation_listener(lambda report: seen.append(report))
        incremental.add_action(**action_for(incremental.dataset))
        incremental.add_actions(
            [action_for(incremental.dataset, row) for row in range(3)]
        )
        assert [report.actions_added for report in seen] == [1, 3]

    def test_solve_after_inserts(self, incremental):
        dataset = incremental.dataset
        incremental.add_actions([action_for(dataset, row) for row in range(5)])
        problem = table1_problem(6, k=3, min_support=incremental.default_support())
        result = incremental.solve(problem, algorithm="dv-fdp-fo")
        assert result.is_empty or result.feasible

    def test_refresh_topic_model(self, incremental):
        incremental.add_action(**action_for(incremental.dataset, tags=("zz-drift",) * 1))
        incremental.refresh_topic_model()
        assert all(group.has_signature() for group in incremental.groups)


class TestRefreshBackendSelection:
    def test_refresh_keeps_configured_backend(self):
        session = IncrementalTagDM(
            small_dataset(),
            enumeration=GroupEnumerationConfig(min_support=5),
            signature_backend="tfidf",
        ).prepare()
        session.refresh_topic_model()
        assert session.session.signature_backend == "tfidf"
        assert session.session.signature_builder.topic_model.name == "tfidf"

    def test_refresh_ignores_misleading_model_name(self):
        """Regression: the backend is taken from the recorded configuration,
        not inferred from the live model object -- a model reporting the
        base-class default name must not swap (or crash) the refit."""
        session = IncrementalTagDM(
            small_dataset(),
            enumeration=GroupEnumerationConfig(min_support=5),
            signature_backend="tfidf",
        ).prepare()
        # Shadow the class attribute with the base-class default name.
        session.session.signature_builder.topic_model.name = "topic-model"
        session.refresh_topic_model()
        assert session.session.signature_builder.topic_model.name == "tfidf"


class TestMaxGroupsCap:
    def make_capped(self):
        dataset = generate_movielens_style(n_users=20, n_items=40, n_actions=300, seed=4)
        session = IncrementalTagDM(
            dataset,
            enumeration=GroupEnumerationConfig(min_support=3, max_groups=10),
            signature_backend="frequency",
        ).prepare()
        assert session.n_groups == 10
        return session

    def test_cap_keeps_pending_and_consistency_clean(self):
        session = self.make_capped()
        attributes = {
            "gender": "female",
            "age": "45-49",
            "occupation": "astronaut-candidate",
            "location": "WY",
        }
        item_attributes = {
            "genre": "western",
            "actor": "actor_unique",
            "director": "director_unique",
        }
        pending_before = dict(session._pending)
        for position in range(4):
            report = session.add_action(
                f"capped-user-{position}",
                "capped-item",
                ["frontier"],
                user_attributes=attributes,
                item_attributes=item_attributes,
            )
            assert report.groups_created == 0  # the cap blocks creation
        assert session.n_groups == 10
        # The blocked descriptions keep accumulating rows as pending...
        new_pending = {
            description: rows
            for description, rows in session._pending.items()
            if description not in pending_before
        }
        assert any(len(rows) >= 3 for rows in new_pending.values())
        # ...and the maintained state still matches a from-scratch
        # enumeration (consistency_errors tolerates the cap).
        assert session.consistency_errors() == []


class TestStoreMirroring:
    def test_inserts_reach_the_store(self, tmp_path):
        from repro.dataset.loaders import dataset_to_records
        from repro.dataset.sqlite_store import SqliteTaggingStore

        dataset = small_dataset()
        store = SqliteTaggingStore.from_dataset(dataset, tmp_path / "mirror.sqlite")
        session = IncrementalTagDM(
            dataset,
            enumeration=GroupEnumerationConfig(min_support=5),
            signature_backend="frequency",
            store=store,
        ).prepare()
        before = store.counts()["actions"]
        session.add_action(**action_for(dataset))
        session.add_action(
            "mirror-user",
            "mirror-item",
            ["durable"],
            user_attributes={"gender": "female"},
            item_attributes={"genre": "drama"},
        )
        assert store.counts()["actions"] == before + 2
        assert store.has_user("mirror-user")
        assert store.has_item("mirror-item")
        # The store tracks the in-memory dataset exactly (including the
        # "unknown" defaults filled in for missing attributes).
        assert dataset_to_records(store.to_dataset()) == dataset_to_records(dataset)
        store.close()

    def test_store_failure_leaves_session_consistent(self, tmp_path):
        """A failing store write must not leave the in-memory dataset with
        a row that reached no group (mirroring runs before the append)."""
        from repro.dataset.sqlite_store import SqliteTaggingStore

        dataset = small_dataset()
        store = SqliteTaggingStore.from_dataset(dataset, tmp_path / "fail.sqlite")
        session = IncrementalTagDM(
            dataset,
            enumeration=GroupEnumerationConfig(min_support=5),
            signature_backend="frequency",
            store=store,
        ).prepare()
        actions_before = dataset.n_actions
        store.close()  # simulate the store becoming unavailable
        with pytest.raises(RuntimeError):
            session.add_action(**action_for(dataset))
        assert dataset.n_actions == actions_before
        assert session.consistency_errors() == []

    def test_snapshot_after_inserts_round_trips(self, tmp_path):
        from repro.core.persistence import load_session

        dataset = small_dataset()
        session = IncrementalTagDM(
            dataset,
            enumeration=GroupEnumerationConfig(min_support=5),
            signature_backend="frequency",
        ).prepare()
        session.add_action(**action_for(dataset))
        session.snapshot(tmp_path / "inc.snapshot")
        warm = load_session(tmp_path / "inc.snapshot", dataset)
        assert warm.n_groups == session.n_groups
        import numpy as np

        assert np.array_equal(warm.signatures, session.session.signatures)
