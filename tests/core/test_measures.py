"""Tests for dimensions, criteria and pairwise aggregation functions."""

from __future__ import annotations

import pytest

from repro.core.measures import (
    Criterion,
    Dimension,
    MEAN_AGGREGATOR,
    MIN_AGGREGATOR,
    PairwiseAggregationFunction,
    SUM_AGGREGATOR,
)


class TestEnums:
    def test_dimension_values(self):
        assert Dimension.USERS.value == "users"
        assert Dimension.ITEMS.value == "items"
        assert Dimension.TAGS.value == "tags"

    def test_criterion_opposites(self):
        assert Criterion.SIMILARITY.opposite is Criterion.DIVERSITY
        assert Criterion.DIVERSITY.opposite is Criterion.SIMILARITY

    def test_enums_are_strings(self):
        assert Dimension.USERS == "users"
        assert Criterion.SIMILARITY == "similarity"


class TestAggregators:
    def test_mean(self):
        assert MEAN_AGGREGATOR([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert MEAN_AGGREGATOR([]) == 0.0

    def test_min(self):
        assert MIN_AGGREGATOR([0.4, 0.2, 0.9]) == pytest.approx(0.2)
        assert MIN_AGGREGATOR([]) == 0.0

    def test_sum(self):
        assert SUM_AGGREGATOR([1.0, 2.0]) == pytest.approx(3.0)
        assert SUM_AGGREGATOR([]) == 0.0


class _FakeGroup:
    """Minimal stand-in carrying just an integer payload."""

    def __init__(self, value: float) -> None:
        self.value = value


def _difference_pairwise(a, b, dimension, criterion):
    score = abs(a.value - b.value)
    if criterion is Criterion.SIMILARITY:
        return 1.0 - score
    return score


class TestPairwiseAggregationFunction:
    def test_pairwise_scores_over_distinct_pairs(self):
        function = PairwiseAggregationFunction(_difference_pairwise)
        groups = [_FakeGroup(0.0), _FakeGroup(0.5), _FakeGroup(1.0)]
        scores = function.pairwise_scores(groups, Dimension.TAGS, Criterion.DIVERSITY)
        assert sorted(scores) == pytest.approx([0.5, 0.5, 1.0])

    def test_score_uses_mean_by_default(self):
        function = PairwiseAggregationFunction(_difference_pairwise)
        groups = [_FakeGroup(0.0), _FakeGroup(1.0)]
        assert function.score(groups, Dimension.TAGS, Criterion.DIVERSITY) == pytest.approx(1.0)
        assert function.score(groups, Dimension.TAGS, Criterion.SIMILARITY) == pytest.approx(0.0)

    def test_alternate_aggregator(self):
        function = PairwiseAggregationFunction(_difference_pairwise, aggregator=MIN_AGGREGATOR)
        groups = [_FakeGroup(0.0), _FakeGroup(0.4), _FakeGroup(1.0)]
        assert function.score(groups, Dimension.TAGS, Criterion.DIVERSITY) == pytest.approx(0.4)

    def test_singleton_conventions(self):
        function = PairwiseAggregationFunction(_difference_pairwise)
        singleton = [_FakeGroup(0.3)]
        assert function.score(singleton, Dimension.TAGS, Criterion.SIMILARITY) == 1.0
        assert function.score(singleton, Dimension.TAGS, Criterion.DIVERSITY) == 0.0

    def test_empty_group_set_uses_singleton_convention(self):
        function = PairwiseAggregationFunction(_difference_pairwise)
        assert function.score([], Dimension.TAGS, Criterion.SIMILARITY) == 1.0

    def test_callable_protocol(self):
        function = PairwiseAggregationFunction(_difference_pairwise, name="diff")
        groups = [_FakeGroup(0.0), _FakeGroup(1.0)]
        assert function(groups, Dimension.TAGS, Criterion.DIVERSITY) == pytest.approx(1.0)
        assert function.name == "diff"
