"""Tests for warm-start session snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.exceptions import NotFittedError
from repro.core.framework import TagDM
from repro.core.persistence import (
    SNAPSHOT_VERSION,
    dataset_fingerprint,
    load_session,
    save_session,
)
from repro.core.problem import table1_problem
from repro.dataset.sqlite_store import SqliteTaggingStore
from repro.dataset.synthetic import generate_movielens_style


@pytest.fixture(scope="module")
def corpus():
    return generate_movielens_style(n_users=40, n_items=80, n_actions=800, seed=23)


def make_session(dataset, backend: str = "frequency") -> TagDM:
    return TagDM(
        dataset,
        enumeration=GroupEnumerationConfig(min_support=5, max_groups=60),
        signature_backend=backend,
        signature_dimensions=25,
        seed=9,
    )


class TestSaveLoad:
    def test_unprepared_session_cannot_be_saved(self, corpus, tmp_path):
        with pytest.raises(NotFittedError):
            save_session(make_session(corpus), tmp_path / "s.snapshot")

    def test_snapshot_restores_prepared_state(self, corpus, tmp_path):
        session = make_session(corpus).prepare()
        path = save_session(session, tmp_path / "s.snapshot")
        warm = load_session(path, corpus)
        assert warm.is_prepared
        assert warm.n_groups == session.n_groups
        assert warm.seed == session.seed
        assert warm.signature_backend == session.signature_backend
        assert warm.enumeration == session.enumeration
        assert [str(g.description) for g in warm.groups] == [
            str(g.description) for g in session.groups
        ]
        assert np.array_equal(warm.signatures, session.signatures)
        for cold_group, warm_group in zip(session.groups, warm.groups):
            assert cold_group.tuple_indices == warm_group.tuple_indices
            assert cold_group.tags == warm_group.tags
            assert cold_group.user_ids == warm_group.user_ids
            assert np.array_equal(cold_group.signature, warm_group.signature)

    def test_topic_model_restored_without_refit(self, corpus, tmp_path):
        session = make_session(corpus, backend="tfidf").prepare()
        path = save_session(session, tmp_path / "s.snapshot")
        warm = load_session(path, corpus)
        assert warm.signature_builder.is_fitted
        assert warm.signature_backend == "tfidf"
        document = list(session.groups[0].tags)
        assert np.array_equal(
            session.signature_builder.topic_model.vectorize(document),
            warm.signature_builder.topic_model.vectorize(document),
        )

    def test_fingerprint_mismatch_rejected(self, corpus, tmp_path):
        session = make_session(corpus).prepare()
        path = save_session(session, tmp_path / "s.snapshot")
        other = generate_movielens_style(n_users=40, n_items=80, n_actions=801, seed=23)
        with pytest.raises(ValueError, match="different dataset"):
            load_session(path, other)

    def test_fingerprint_fields(self, corpus):
        fingerprint = dataset_fingerprint(corpus)
        assert fingerprint["n_actions"] == corpus.n_actions
        assert fingerprint["user_schema"] == list(corpus.user_schema)
        assert isinstance(fingerprint["action_checksum"], int)

    def test_fingerprint_rejects_same_shape_different_corpus(self, corpus, tmp_path):
        """Regression: the count-only fingerprint false-accepted a
        *different* corpus with identical user/item/action counts."""
        session = make_session(corpus).prepare()
        path = save_session(session, tmp_path / "s.snapshot")
        # Same generator, same shape, different seed => same counts with
        # overwhelming probability, different content.
        impostor = generate_movielens_style(
            n_users=40, n_items=80, n_actions=800, seed=99
        )
        impostor.name = corpus.name
        assert impostor.n_actions == corpus.n_actions
        assert impostor.n_users == corpus.n_users
        assert impostor.n_items == corpus.n_items
        with pytest.raises(ValueError, match="different dataset"):
            load_session(path, impostor)

    def test_fingerprint_checksum_bounded_and_stable(self, corpus):
        """The checksum must not degrade into a full-corpus scan, and must
        be deterministic across calls (and, via crc32, across processes)."""
        from repro.core.persistence import CHECKSUM_SAMPLE_SIZE, _action_checksum

        big = generate_movielens_style(n_users=40, n_items=80, n_actions=5000, seed=1)
        calls = {"count": 0}
        original = big.user_of

        def counting_user_of(index):
            calls["count"] += 1
            return original(index)

        big.user_of = counting_user_of
        checksum = _action_checksum(big)
        assert calls["count"] <= CHECKSUM_SAMPLE_SIZE + 1
        assert _action_checksum(big) == checksum

    def test_save_session_is_atomic(self, corpus, tmp_path, monkeypatch):
        """A crash mid-write must leave the previous snapshot intact and no
        stray temp file behind."""
        session = make_session(corpus).prepare()
        path = save_session(session, tmp_path / "s.snapshot")
        good_bytes = path.read_bytes()

        def exploding_dump(obj, handle, protocol=None):
            handle.write(b"torn")
            raise OSError("disk full")

        monkeypatch.setattr(
            "repro.core.persistence.pickle.dump", exploding_dump
        )
        with pytest.raises(OSError, match="disk full"):
            save_session(session, path)
        assert path.read_bytes() == good_bytes  # old snapshot untouched
        assert list(tmp_path.glob("*.tmp-*")) == []  # staging file cleaned up
        monkeypatch.undo()
        warm = load_session(path, corpus)
        assert warm.n_groups == session.n_groups

    def test_snapshot_version_checked(self, corpus, tmp_path):
        import pickle

        session = make_session(corpus).prepare()
        path = save_session(session, tmp_path / "s.snapshot")
        snapshot = pickle.loads(path.read_bytes())
        assert snapshot["snapshot_version"] == SNAPSHOT_VERSION
        snapshot["snapshot_version"] = SNAPSHOT_VERSION + 1
        path.write_bytes(pickle.dumps(snapshot))
        with pytest.raises(ValueError, match="snapshot"):
            load_session(path, corpus)


class TestSolveParity:
    def test_warm_solve_matches_cold_solve(self, corpus, tmp_path):
        session = make_session(corpus).prepare()
        session.signature_lsh(n_bits=10)  # include LSH bits in the snapshot
        path = save_session(session, tmp_path / "s.snapshot")
        warm = load_session(path, corpus)
        for problem_id, algorithm in ((1, "sm-lsh-fo"), (1, "sm-lsh-fi"), (6, "dv-fdp-fo"), (6, "dv-fdp-fi")):
            problem = table1_problem(
                problem_id, k=3, min_support=session.default_support()
            )
            cold = session.solve(problem, algorithm=algorithm)
            hot = warm.solve(problem, algorithm=algorithm)
            assert cold.objective_value == hot.objective_value, algorithm
            assert cold.descriptions() == hot.descriptions(), algorithm
            assert cold.feasible == hot.feasible, algorithm

    def test_via_sqlite_reload(self, corpus, tmp_path):
        """The full production loop: store -> snapshot -> restart -> solve."""
        session = make_session(corpus).prepare()
        snapshot = save_session(session, tmp_path / "s.snapshot")
        with SqliteTaggingStore.from_dataset(corpus, tmp_path / "c.sqlite") as store:
            reloaded = store.to_dataset()
        warm = load_session(snapshot, reloaded)
        problem = table1_problem(6, k=3, min_support=session.default_support())
        assert (
            warm.solve(problem, algorithm="dv-fdp-fo").objective_value
            == session.solve(problem, algorithm="dv-fdp-fo").objective_value
        )

    def test_tagdm_convenience_wrappers(self, corpus, tmp_path):
        session = make_session(corpus).prepare().save(tmp_path / "s.snapshot")
        warm = TagDM.load(tmp_path / "s.snapshot", corpus)
        assert warm.n_groups == session.n_groups


class TestLshCachePersistence:
    def test_bit_cache_round_trip(self, corpus, tmp_path):
        session = make_session(corpus).prepare()
        cold_index = session.signature_lsh(n_bits=10, n_tables=2)
        path = save_session(session, tmp_path / "s.snapshot")
        warm = load_session(path, corpus)
        warm_index = warm.signature_lsh(n_bits=10, n_tables=2)
        for cold_bits, warm_bits in zip(cold_index.bit_cache, warm_index.bit_cache):
            assert np.array_equal(cold_bits, warm_bits)
        for table in range(2):
            cold_buckets = {b.key: b.members for b in cold_index.buckets(table)}
            warm_buckets = {b.key: b.members for b in warm_index.buckets(table)}
            assert cold_buckets == warm_buckets

    def test_narrower_widths_derive_from_restored_cache(self, corpus, tmp_path):
        session = make_session(corpus).prepare()
        session.signature_lsh(n_bits=12)
        path = save_session(session, tmp_path / "s.snapshot")
        warm = load_session(path, corpus)
        narrow = warm.signature_lsh(n_bits=6)
        assert narrow.n_bits == 6
        direct = session.signature_lsh(n_bits=6)
        assert {b.key: b.members for b in narrow.buckets()} == {
            b.key: b.members for b in direct.buckets()
        }

    def test_session_lsh_cache_reuses_widest_index(self, corpus):
        session = make_session(corpus).prepare()
        wide = session.signature_lsh(n_bits=12)
        again = session.signature_lsh(n_bits=12)
        assert again is wide
        narrow = session.signature_lsh(n_bits=6)
        assert narrow.n_bits == 6
        assert session._lsh_cache[1] is wide  # widest stays cached
