"""Tests for TagDM problem specifications."""

from __future__ import annotations

import pytest

from repro.core.exceptions import InvalidProblemError
from repro.core.measures import Criterion, Dimension
from repro.core.problem import (
    Constraint,
    Objective,
    TABLE1_PROBLEMS,
    TABLE1_SPECS,
    TagDMProblem,
    enumerate_problem_instances,
    table1_problem,
)


class TestConstraintAndObjective:
    def test_constraint_threshold_bounds(self):
        Constraint(Dimension.USERS, Criterion.SIMILARITY, 0.0)
        Constraint(Dimension.USERS, Criterion.SIMILARITY, 1.0)
        with pytest.raises(InvalidProblemError):
            Constraint(Dimension.USERS, Criterion.SIMILARITY, 1.5)

    def test_objective_weight_positive(self):
        with pytest.raises(InvalidProblemError):
            Objective(Dimension.TAGS, Criterion.SIMILARITY, weight=0.0)

    def test_describe_strings(self):
        constraint = Constraint(Dimension.ITEMS, Criterion.DIVERSITY, 0.5)
        assert constraint.describe() == "items diversity >= 0.5"
        objective = Objective(Dimension.TAGS, Criterion.SIMILARITY, weight=2.0)
        assert "2 *" in objective.describe()


class TestTagDMProblemValidation:
    def _objective(self):
        return (Objective(Dimension.TAGS, Criterion.SIMILARITY),)

    def test_needs_an_objective(self):
        with pytest.raises(InvalidProblemError):
            TagDMProblem(name="p", constraints=(), objectives=())

    def test_k_bounds(self):
        with pytest.raises(InvalidProblemError):
            TagDMProblem(name="p", constraints=(), objectives=self._objective(), k_lo=0)
        with pytest.raises(InvalidProblemError):
            TagDMProblem(
                name="p", constraints=(), objectives=self._objective(), k_lo=3, k_hi=2
            )

    def test_negative_support_rejected(self):
        with pytest.raises(InvalidProblemError):
            TagDMProblem(
                name="p", constraints=(), objectives=self._objective(), min_support=-1
            )

    def test_duplicate_constraint_dimension_rejected(self):
        with pytest.raises(InvalidProblemError):
            TagDMProblem(
                name="p",
                constraints=(
                    Constraint(Dimension.USERS, Criterion.SIMILARITY, 0.5),
                    Constraint(Dimension.USERS, Criterion.DIVERSITY, 0.5),
                ),
                objectives=self._objective(),
            )

    def test_dimension_cannot_be_constrained_and_optimised(self):
        with pytest.raises(InvalidProblemError):
            TagDMProblem(
                name="p",
                constraints=(Constraint(Dimension.TAGS, Criterion.SIMILARITY, 0.5),),
                objectives=self._objective(),
            )

    def test_accessors(self):
        problem = table1_problem(4)
        assert problem.constrained_dimensions == (Dimension.USERS, Dimension.ITEMS)
        assert problem.optimised_dimensions == (Dimension.TAGS,)
        assert problem.criterion_for(Dimension.USERS) is Criterion.DIVERSITY
        assert problem.criterion_for(Dimension.TAGS) is Criterion.DIVERSITY
        assert problem.constraint_for(Dimension.ITEMS).threshold == 0.5
        assert problem.constraint_for(Dimension.TAGS) is None

    def test_with_support_and_with_k(self):
        problem = table1_problem(1)
        updated = problem.with_support(100).with_k(2, 4)
        assert updated.min_support == 100
        assert (updated.k_lo, updated.k_hi) == (2, 4)
        # Original is unchanged (frozen dataclass copies).
        assert problem.min_support == 0

    def test_describe_mentions_all_parts(self):
        text = table1_problem(1, k=3, min_support=50).describe()
        assert "problem-1" in text
        assert "support: >= 50" in text
        assert "users similarity" in text
        assert "maximise tags similarity" in text


class TestTable1:
    def test_six_problems_defined(self):
        assert sorted(TABLE1_SPECS) == [1, 2, 3, 4, 5, 6]
        assert sorted(TABLE1_PROBLEMS) == [1, 2, 3, 4, 5, 6]

    def test_specs_match_the_paper(self):
        # Table 1 rows: (user, item, tag) criteria.
        assert TABLE1_SPECS[1] == (
            Criterion.SIMILARITY,
            Criterion.SIMILARITY,
            Criterion.SIMILARITY,
        )
        assert TABLE1_SPECS[4] == (
            Criterion.DIVERSITY,
            Criterion.SIMILARITY,
            Criterion.DIVERSITY,
        )
        assert TABLE1_SPECS[6] == (
            Criterion.SIMILARITY,
            Criterion.SIMILARITY,
            Criterion.DIVERSITY,
        )

    def test_all_table1_problems_constrain_users_items_and_optimise_tags(self):
        for problem in TABLE1_PROBLEMS.values():
            assert set(problem.constrained_dimensions) == {Dimension.USERS, Dimension.ITEMS}
            assert problem.optimised_dimensions == (Dimension.TAGS,)

    def test_problem_id_validation(self):
        with pytest.raises(InvalidProblemError):
            table1_problem(7)

    def test_parameters_are_applied(self):
        problem = table1_problem(2, k=5, min_support=42, user_threshold=0.3, item_threshold=0.7)
        assert problem.k_hi == 5
        assert problem.k_lo == 5
        assert problem.min_support == 42
        assert problem.constraint_for(Dimension.USERS).threshold == 0.3
        assert problem.constraint_for(Dimension.ITEMS).threshold == 0.7

    def test_k_lo_override(self):
        problem = table1_problem(2, k=4, k_lo=1)
        assert problem.k_lo == 1
        assert problem.k_hi == 4

    def test_similarity_and_diversity_flags(self):
        assert TABLE1_PROBLEMS[1].maximises_tag_similarity
        assert not TABLE1_PROBLEMS[1].maximises_tag_diversity
        assert TABLE1_PROBLEMS[6].maximises_tag_diversity


class TestEnumeration:
    def test_instance_count(self):
        problems = enumerate_problem_instances()
        assert len(problems) == 98
        assert len({p.name for p in problems}) == 98

    def test_every_instance_is_valid_and_has_an_objective(self):
        for problem in enumerate_problem_instances():
            assert problem.objectives
            assert problem.k_lo <= problem.k_hi

    def test_table1_configurations_are_covered(self):
        """Each Table 1 (criteria, roles) combination appears in the enumeration."""
        problems = enumerate_problem_instances()
        signatures = {
            (
                tuple(sorted((c.dimension.value, c.criterion.value) for c in p.constraints)),
                tuple(sorted((o.dimension.value, o.criterion.value) for o in p.objectives)),
            )
            for p in problems
        }
        for table_problem in TABLE1_PROBLEMS.values():
            signature = (
                tuple(
                    sorted(
                        (c.dimension.value, c.criterion.value)
                        for c in table_problem.constraints
                    )
                ),
                tuple(
                    sorted(
                        (o.dimension.value, o.criterion.value)
                        for o in table_problem.objectives
                    )
                ),
            )
            assert signature in signatures

    def test_threshold_and_k_propagate(self):
        problems = enumerate_problem_instances(k=2, min_support=10, threshold=0.4)
        assert all(p.k_hi == 2 for p in problems)
        assert all(p.min_support == 10 for p in problems)
        assert all(c.threshold == 0.4 for p in problems for c in p.constraints)
