"""Tests for the MiningResult container."""

from __future__ import annotations

import pytest

from repro.core.groups import build_group
from repro.core.problem import table1_problem
from repro.core.result import MiningResult


@pytest.fixture()
def sample_result(tiny_dataset):
    groups = (
        build_group(tiny_dataset, {"item.genre": "action"}),
        build_group(tiny_dataset, {"item.genre": "comedy"}),
    )
    return MiningResult(
        problem=table1_problem(1, k=2, min_support=1),
        algorithm="exact",
        groups=groups,
        objective_value=0.75,
        constraint_scores={"users.similarity": 0.8, "items.similarity": 0.6},
        support=4,
        feasible=True,
        elapsed_seconds=0.125,
        evaluations=42,
    )


class TestMiningResult:
    def test_basic_properties(self, sample_result):
        assert not sample_result.is_empty
        assert sample_result.k == 2
        assert sample_result.recompute_support() == 4

    def test_descriptions(self, sample_result):
        descriptions = sample_result.descriptions()
        assert "{item.genre=action}" in descriptions
        assert "{item.genre=comedy}" in descriptions

    def test_summary_mentions_key_facts(self, sample_result):
        text = sample_result.summary()
        assert "problem-1 via exact" in text
        assert "objective=0.7500" in text
        assert "feasible" in text
        assert "constraint items.similarity: 0.6000" in text
        assert "group {item.genre=action}" in text

    def test_as_row(self, sample_result):
        row = sample_result.as_row()
        assert row["problem"] == "problem-1"
        assert row["algorithm"] == "exact"
        assert row["k"] == 2
        assert row["evaluations"] == 42

    def test_empty_result(self):
        result = MiningResult(
            problem=table1_problem(1),
            algorithm="sm-lsh-fi",
            groups=(),
            objective_value=0.0,
        )
        assert result.is_empty
        assert result.k == 0
        assert result.recompute_support() == 0
        assert "infeasible" in result.summary()
