"""Tests for the runtime publication-immutability sanitizer.

The static half (RC5xx) is covered in ``tests/tools/test_analyze.py``;
here we prove the runtime half: with ``TAGDM_STATE_SANITIZER`` armed a
frozen view's containers raise on write, and with it unset (the
production default) nothing is wrapped at all.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.incremental import IncrementalTagDM
from repro.core.sanitizer import (
    SANITIZER_ENV,
    FrozenDict,
    FrozenList,
    PublicationViolation,
    freeze_array,
    sanitizer_enabled,
    seal_view,
)
from repro.dataset.synthetic import generate_movielens_style


@pytest.fixture()
def armed(monkeypatch):
    monkeypatch.setenv(SANITIZER_ENV, "1")


@pytest.fixture()
def disarmed(monkeypatch):
    monkeypatch.delenv(SANITIZER_ENV, raising=False)


class TestEnablement:
    def test_unset_and_falsey_values_disable(self, monkeypatch):
        for value in (None, "", "0", "false", " 0 "):
            if value is None:
                monkeypatch.delenv(SANITIZER_ENV, raising=False)
            else:
                monkeypatch.setenv(SANITIZER_ENV, value)
            assert not sanitizer_enabled()

    def test_truthy_values_enable(self, monkeypatch):
        for value in ("1", "yes", "on"):
            monkeypatch.setenv(SANITIZER_ENV, value)
            assert sanitizer_enabled()


class TestFrozenContainers:
    def test_frozen_list_reads_like_a_list(self):
        frozen = FrozenList([1, 2, 3])
        assert len(frozen) == 3
        assert frozen[0] == 1
        assert frozen[1:] == [2, 3]
        assert list(frozen) == [1, 2, 3]
        assert frozen == [1, 2, 3]

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda l: l.append(4),
            lambda l: l.extend([4]),
            lambda l: l.insert(0, 4),
            lambda l: l.remove(1),
            lambda l: l.pop(),
            lambda l: l.clear(),
            lambda l: l.sort(),
            lambda l: l.reverse(),
            lambda l: l.__setitem__(0, 9),
            lambda l: l.__delitem__(0),
            lambda l: l.__iadd__([4]),
            lambda l: l.__imul__(2),
        ],
    )
    def test_frozen_list_mutators_raise(self, mutate):
        frozen = FrozenList([1, 2, 3])
        with pytest.raises(PublicationViolation):
            mutate(frozen)
        assert frozen == [1, 2, 3]  # nothing changed

    def test_frozen_dict_reads_like_a_dict(self):
        frozen = FrozenDict({"a": 1})
        assert frozen["a"] == 1
        assert dict(frozen) == {"a": 1}
        assert frozen.get("missing") is None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.__setitem__("b", 2),
            lambda d: d.__delitem__("a"),
            lambda d: d.pop("a"),
            lambda d: d.popitem(),
            lambda d: d.clear(),
            lambda d: d.update({"b": 2}),
            lambda d: d.setdefault("b", 2),
        ],
    )
    def test_frozen_dict_mutators_raise(self, mutate):
        frozen = FrozenDict({"a": 1})
        with pytest.raises(PublicationViolation):
            mutate(frozen)
        assert frozen == {"a": 1}


class TestFreezeArray:
    def test_armed_marks_array_read_only(self, armed):
        array = np.zeros(4)
        assert freeze_array(array) is array
        with pytest.raises(ValueError):
            array[0] = 1.0

    def test_disarmed_leaves_array_writable(self, disarmed):
        array = np.zeros(4)
        assert freeze_array(array) is array
        array[0] = 1.0  # no raise
        assert array[0] == 1.0

    def test_non_arrays_pass_through(self, armed):
        assert freeze_array(None) is None
        payload = object()
        assert freeze_array(payload) is payload


class TestSealView:
    def _view(self):
        signature = np.ones(3)
        group = SimpleNamespace(signature=signature)
        return SimpleNamespace(
            groups=[group], _signatures=np.ones((1, 3))
        )

    def test_armed_wraps_groups_and_freezes_signatures(self, armed):
        view = self._view()
        seal_view(view)
        assert isinstance(view.groups, FrozenList)
        with pytest.raises(PublicationViolation):
            view.groups.append(object())
        with pytest.raises(ValueError):
            view.groups[0].signature[0] = 5.0
        with pytest.raises(ValueError):
            view._signatures[0, 0] = 5.0

    def test_disarmed_is_a_no_op(self, disarmed):
        view = self._view()
        seal_view(view)
        assert type(view.groups) is list
        view.groups.append(object())  # still a plain list
        view._signatures[0, 0] = 5.0  # still writable


class TestFrozenSessionView:
    """End-to-end: freeze() on a real session honours the env switch."""

    def _session(self):
        dataset = generate_movielens_style(
            n_users=30, n_items=60, n_actions=300, seed=7
        )
        return IncrementalTagDM(
            dataset, enumeration=GroupEnumerationConfig(min_support=5)
        ).prepare()

    def test_armed_view_raises_on_post_publication_write(self, armed):
        view = self._session().freeze(epoch=1)
        assert isinstance(view.groups, FrozenList)
        with pytest.raises(PublicationViolation):
            view.groups.append(object())
        with pytest.raises(PublicationViolation):
            view.groups.pop()

    def test_armed_view_still_builds_lazy_state(self, armed):
        # _signatures/_matrix_cache/_lsh_cache are lock:view.build, not
        # frozen-after-publish: the lazy build must still succeed...
        view = self._session().freeze(epoch=1)
        matrix = view.signatures
        assert matrix is not None and len(view.groups) > 0
        # ...and the *result* it publishes is itself read-only.
        with pytest.raises(ValueError):
            matrix[0, 0] = 123.0

    def test_disarmed_view_stays_plain(self, disarmed):
        view = self._session().freeze(epoch=1)
        assert type(view.groups) is list
        matrix = view.signatures
        matrix[0, 0] = matrix[0, 0]  # writable: no wrapping when unset
