"""Tests for group tag signature generation and attribute vectorisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.enumeration import GroupEnumerationConfig, enumerate_groups
from repro.core.groups import build_group
from repro.core.measures import Dimension
from repro.core.signatures import (
    AttributeVectorizer,
    GroupSignatureBuilder,
    signature_matrix,
)


@pytest.fixture()
def tiny_groups(tiny_dataset):
    return [
        build_group(tiny_dataset, {"item.genre": "action"}),
        build_group(tiny_dataset, {"item.genre": "comedy"}),
        build_group(tiny_dataset, {"user.gender": "male"}),
    ]


class TestGroupSignatureBuilder:
    def test_fit_on_empty_groups_raises(self):
        with pytest.raises(ValueError):
            GroupSignatureBuilder(backend="frequency").fit([])

    def test_signature_before_fit_raises(self, tiny_groups):
        builder = GroupSignatureBuilder(backend="frequency")
        with pytest.raises(RuntimeError):
            builder.signature(tiny_groups[0])

    def test_build_attaches_signatures(self, tiny_groups):
        builder = GroupSignatureBuilder(backend="frequency", n_dimensions=6)
        matrix = builder.build(tiny_groups)
        assert matrix.shape == (3, 6)
        assert all(group.has_signature() for group in tiny_groups)
        assert np.allclose(signature_matrix(tiny_groups), matrix)

    def test_action_and_comedy_groups_differ(self, tiny_groups):
        builder = GroupSignatureBuilder(backend="frequency", n_dimensions=6)
        builder.build(tiny_groups)
        action, comedy, _ = tiny_groups
        assert not np.allclose(action.signature, comedy.signature)

    def test_dimension_labels_length(self, tiny_groups):
        builder = GroupSignatureBuilder(backend="frequency", n_dimensions=6)
        builder.build(tiny_groups)
        assert len(builder.dimension_labels()) == 6

    @pytest.mark.parametrize("backend", ["frequency", "tfidf", "lda"])
    def test_all_backends_produce_finite_vectors(self, tiny_groups, backend):
        builder = GroupSignatureBuilder(
            backend=backend, n_dimensions=4, seed=1, lda_iterations=15
        )
        matrix = builder.build(tiny_groups)
        assert matrix.shape == (3, 4)
        assert np.all(np.isfinite(matrix))
        assert np.all(matrix >= 0)

    def test_external_topic_model_is_used(self, tiny_groups):
        from repro.text.topics import FrequencyTopicModel

        model = FrequencyTopicModel(n_dimensions=3)
        builder = GroupSignatureBuilder(topic_model=model)
        builder.build(tiny_groups)
        assert builder.topic_model is model
        assert builder.n_dimensions == 3

    def test_signature_matrix_empty(self):
        assert signature_matrix([]).shape == (0, 0)

    def test_signatures_on_real_corpus(self, candidate_groups):
        matrix = signature_matrix(candidate_groups)
        assert matrix.shape == (len(candidate_groups), 25)
        # Signatures are L1-normalised frequencies: rows sum to ~1 or are 0.
        sums = matrix.sum(axis=1)
        assert np.all((np.isclose(sums, 1.0)) | (sums == 0.0))


class TestAttributeVectorizer:
    def test_width_counts_attribute_values(self, tiny_dataset):
        vectorizer = AttributeVectorizer(tiny_dataset, dimensions=(Dimension.USERS,))
        # gender has 2 observed values, age has 2 -> 4 slots.
        assert vectorizer.n_dimensions == 4

    def test_vectorize_marks_description_slots(self, tiny_dataset, tiny_groups):
        vectorizer = AttributeVectorizer(tiny_dataset)
        male_group = tiny_groups[2]
        vector = vectorizer.vectorize(male_group)
        assert vector.sum() == pytest.approx(1.0)  # one predicate -> one slot

    def test_vectorize_many_shape(self, tiny_dataset, tiny_groups):
        vectorizer = AttributeVectorizer(tiny_dataset)
        matrix = vectorizer.vectorize_many(tiny_groups)
        assert matrix.shape == (3, vectorizer.n_dimensions)
        assert vectorizer.vectorize_many([]).shape == (0, vectorizer.n_dimensions)

    def test_scale_parameter(self, tiny_dataset, tiny_groups):
        vectorizer = AttributeVectorizer(tiny_dataset, scale=2.5)
        vector = vectorizer.vectorize(tiny_groups[2])
        assert vector.max() == pytest.approx(2.5)

    def test_fold_with_signatures_concatenates(self, tiny_dataset, tiny_groups):
        GroupSignatureBuilder(backend="frequency", n_dimensions=5).build(tiny_groups)
        vectorizer = AttributeVectorizer(tiny_dataset)
        folded = vectorizer.fold_with_signatures(tiny_groups)
        assert folded.shape == (3, vectorizer.n_dimensions + 5)

    def test_fold_without_signatures_raises(self, tiny_dataset):
        fresh_groups = [build_group(tiny_dataset, {"item.genre": "action"})]
        vectorizer = AttributeVectorizer(tiny_dataset)
        with pytest.raises(RuntimeError):
            vectorizer.fold_with_signatures(fresh_groups)

    def test_item_only_dimensions(self, tiny_dataset, tiny_groups):
        vectorizer = AttributeVectorizer(tiny_dataset, dimensions=(Dimension.ITEMS,))
        assert vectorizer.n_dimensions == 2  # genre: action, comedy
        male_vector = vectorizer.vectorize(tiny_groups[2])
        assert male_vector.sum() == 0.0  # user-only description has no item slots
