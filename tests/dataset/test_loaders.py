"""Tests for record / CSV round-tripping."""

from __future__ import annotations

import pytest

from repro.dataset.loaders import (
    dataset_from_records,
    dataset_to_records,
    load_csv,
    save_csv,
)


RECORDS = [
    {
        "user_id": "u1",
        "item_id": "i1",
        "tags": ["alpha", "beta"],
        "rating": 4.5,
        "user.gender": "male",
        "user.age": "teen",
        "item.genre": "action",
    },
    {
        "user_id": "u2",
        "item_id": "i1",
        "tags": "gamma|delta",
        "rating": None,
        "user.gender": "female",
        "user.age": "adult",
        "item.genre": "action",
    },
    {
        "user_id": "u1",
        "item_id": "i2",
        "tags": ["alpha"],
        "user.gender": "male",
        "user.age": "teen",
        "item.genre": "comedy",
    },
]


class TestRecords:
    def test_dataset_from_records_infers_schema(self):
        dataset = dataset_from_records(RECORDS)
        assert dataset.user_schema == ("gender", "age")
        assert dataset.item_schema == ("genre",)
        assert dataset.n_actions == 3
        assert dataset.n_users == 2
        assert dataset.n_items == 2

    def test_string_tags_are_split_on_pipe(self):
        dataset = dataset_from_records(RECORDS)
        assert dataset.tags_of(1) == ("gamma", "delta")

    def test_missing_rating_becomes_none(self):
        dataset = dataset_from_records(RECORDS)
        assert dataset.rating_of(0) == 4.5
        assert dataset.rating_of(1) is None
        assert dataset.rating_of(2) is None

    def test_explicit_schema_overrides_inference(self):
        dataset = dataset_from_records(
            RECORDS, user_schema=("gender",), item_schema=("genre",)
        )
        assert dataset.user_schema == ("gender",)

    def test_empty_records_raise(self):
        with pytest.raises(ValueError):
            dataset_from_records([])

    def test_round_trip_through_records(self):
        dataset = dataset_from_records(RECORDS)
        back = dataset_from_records(dataset_to_records(dataset))
        assert back.n_actions == dataset.n_actions
        assert back.tags_of(0) == dataset.tags_of(0)
        assert back.user_attributes("u2") == dataset.user_attributes("u2")


class TestCsv:
    def test_round_trip_through_csv(self, tmp_path):
        dataset = dataset_from_records(RECORDS)
        path = save_csv(dataset, tmp_path / "corpus.csv")
        assert path.exists()
        loaded = load_csv(path)
        assert loaded.n_actions == dataset.n_actions
        assert loaded.tags_of(1) == ("gamma", "delta")
        assert loaded.rating_of(0) == 4.5
        assert loaded.rating_of(1) is None
        assert loaded.item_attributes("i2") == {"genre": "comedy"}

    def test_load_csv_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("user_id,item_id,tags,rating\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_round_trip_preserves_synthetic_corpus(self, tmp_path, movielens_dataset):
        sample = movielens_dataset.sample(40, seed=0)
        path = save_csv(sample, tmp_path / "sample.csv")
        loaded = load_csv(path)
        assert loaded.n_actions == sample.n_actions
        assert set(loaded.columns) == set(sample.columns)
        original_tags = sorted(sample.tag_vocabulary.tokens())
        loaded_tags = sorted(loaded.tag_vocabulary.tokens())
        assert original_tags == loaded_tags
