"""Tests for the microblog-style (tweets about events) generator."""

from __future__ import annotations

import pytest

from repro.dataset.microblog import (
    CAMPAIGN_TAGS,
    EDITORIAL_TAGS,
    MicroblogStyleConfig,
    generate_microblog_style,
)


class TestMicroblogGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MicroblogStyleConfig(n_tweets=0)
        with pytest.raises(ValueError):
            MicroblogStyleConfig(habit_tag_probability=1.5)

    def test_shape_and_schemas(self):
        dataset = generate_microblog_style(
            MicroblogStyleConfig(n_accounts=30, n_events=60, n_tweets=400, seed=1)
        )
        assert dataset.n_actions == 400
        assert dataset.user_schema == ("account_type", "region")
        assert dataset.item_schema == ("category", "outlet")
        assert all(len(dataset.tags_of(i)) >= 1 for i in range(dataset.n_actions))

    def test_determinism(self):
        config = MicroblogStyleConfig(n_accounts=25, n_events=50, n_tweets=300, seed=7)
        a = generate_microblog_style(config)
        b = generate_microblog_style(config)
        assert [a.tags_of(i) for i in range(100)] == [b.tags_of(i) for i in range(100)]

    def test_event_popularity_is_heavy_tailed(self):
        dataset = generate_microblog_style(
            MicroblogStyleConfig(n_accounts=40, n_events=100, n_tweets=1500, seed=2)
        )
        counts = sorted(
            (len(dataset.matching_indices({"item.category": value}))
             for value in dataset.distinct_values("item.category")),
            reverse=True,
        )
        # Event draws concentrate on a few events, so the most tweeted
        # category holds a disproportionate share.
        assert counts[0] > sum(counts) / len(counts)

    def test_journalists_use_editorial_hashtags_more_than_citizens(self):
        dataset = generate_microblog_style(
            MicroblogStyleConfig(n_accounts=80, n_events=120, n_tweets=2500, seed=3)
        )
        editorial = set(EDITORIAL_TAGS)

        def editorial_share(account_type: str) -> float:
            scoped = dataset.filter({"user.account_type": account_type})
            tags = scoped.tags_for_indices(range(scoped.n_actions))
            if not tags:
                return 0.0
            return sum(1 for tag in tags if tag in editorial) / len(tags)

        assert editorial_share("journalist") > editorial_share("citizen")

    def test_organizations_use_campaign_hashtags(self):
        dataset = generate_microblog_style(
            MicroblogStyleConfig(n_accounts=80, n_events=120, n_tweets=2500, seed=3)
        )
        scoped = dataset.filter({"user.account_type": "organization"})
        tags = scoped.tags_for_indices(range(scoped.n_actions))
        assert any(tag in set(CAMPAIGN_TAGS) for tag in tags)

    def test_framework_runs_on_microblog_corpus(self):
        from repro import TagDM, table1_problem
        from repro.core import GroupEnumerationConfig

        dataset = generate_microblog_style(
            MicroblogStyleConfig(n_accounts=60, n_events=100, n_tweets=1500, seed=5)
        )
        session = TagDM(
            dataset,
            enumeration=GroupEnumerationConfig(min_support=5, max_groups=50),
        ).prepare()
        result = session.solve(
            table1_problem(4, k=3, min_support=session.default_support()),
            algorithm="dv-fdp-fo",
        )
        assert result.is_empty or result.feasible
