"""Tests for the SQLite SQL pushdowns (window functions + accelerators).

The delta+main serving split moves the bulk-read and candidate-support
queries out of Python row streams and into SQLite -- these tests pin the
pushdowns to the streaming/Python reference implementations they
replaced, byte for byte.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.dataset.sqlite_store import SqliteTaggingStore
from repro.dataset.store import TaggingDataset
from repro.dataset.synthetic import generate_movielens_style


@pytest.fixture()
def corpus() -> TaggingDataset:
    return generate_movielens_style(n_users=30, n_items=60, n_actions=400, seed=11)


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "corpus.sqlite"


class TestActionRows:
    def test_action_rows_match_streaming_iteration(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            assert store.action_rows() == list(store.iter_actions())

    def test_tail_restriction_matches_filtered_stream(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            tail = store.tail_actions(390)
            reference = [
                action for action in store.iter_actions() if action["action_id"] > 390
            ]
            assert tail == reference
            assert len(tail) == corpus.n_actions - 390
            # Dataset rows are 0-based, action_id is 1-based: the tail
            # from row N starts with action_id N+1.
            assert tail[0]["action_id"] == 391

    def test_tail_beyond_end_is_empty(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            assert store.tail_actions(corpus.n_actions) == []

    def test_zero_tag_actions_come_through_as_empty_tuple(self, store_path):
        dataset = TaggingDataset(("kind",), ("genre",), name="bare")
        dataset.register_user("u1", {"kind": "a"})
        dataset.register_item("i1", {"genre": "b"})
        dataset.add_action("u1", "i1", ())
        dataset.add_action("u1", "i1", ("tagged",))
        with SqliteTaggingStore.from_dataset(dataset, store_path) as store:
            rows = store.action_rows()
            assert rows[0]["tags"] == ()
            assert rows[1]["tags"] == ("tagged",)
            assert rows == list(store.iter_actions())

    def test_separator_collision_falls_back_to_stream(self, store_path):
        dataset = TaggingDataset(("kind",), ("genre",), name="weird")
        dataset.register_user("u1", {"kind": "a"})
        dataset.register_item("i1", {"genre": "b"})
        dataset.add_action("u1", "i1", ("plain", "with\x1fseparator"))
        dataset.add_action("u1", "i1", ("plain",))
        with SqliteTaggingStore.from_dataset(dataset, store_path) as store:
            assert store._tags_collide_with_separator()
            rows = store.action_rows()
            assert rows == list(store.iter_actions())
            assert rows[0]["tags"] == ("plain", "with\x1fseparator")
            assert store.tail_actions(1) == rows[1:]

    def test_round_trip_dataset_uses_pushdown_losslessly(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            restored = store.to_dataset()
        assert restored.n_actions == corpus.n_actions
        for row in range(corpus.n_actions):
            assert restored.tags_of(row) == corpus.tags_of(row)
            assert restored.user_of(row) == corpus.user_of(row)
            assert restored.item_of(row) == corpus.item_of(row)


class TestActionAttrsAccelerator:
    def test_sync_is_incremental(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            added = store.sync_action_attrs()
            per_action = len(corpus.user_schema) + len(corpus.item_schema)
            assert added == corpus.n_actions * per_action
            assert store.sync_action_attrs() == 0  # high-water mark holds

            store.append_action(corpus.user_of(0), corpus.item_of(0), ("extra",))
            assert store.sync_action_attrs() == per_action  # only the tail

    def test_rebuild_refills_from_scratch(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            first = store.sync_action_attrs()
            assert store.sync_action_attrs(rebuild=True) == first

    def test_attribute_support_counts_match_python_reference(
        self, corpus, store_path
    ):
        min_support = 5
        reference = {}
        for column in corpus.columns:
            for value, count in Counter(corpus.column_values(column)).items():
                if count >= min_support:
                    reference[(column, value)] = count
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            assert store.attribute_support_counts(min_support=min_support) == reference

    def test_pair_support_counts_match_python_reference(self, corpus, store_path):
        min_support = 5
        user_columns = [c for c in corpus.columns if c.startswith("user.")]
        item_columns = [c for c in corpus.columns if c.startswith("item.")]
        reference = Counter()
        for row in range(corpus.n_actions):
            for u_col in user_columns:
                u_val = corpus.column_values(u_col)[row]
                for i_col in item_columns:
                    i_val = corpus.column_values(i_col)[row]
                    reference[((u_col, u_val), (i_col, i_val))] += 1
        expected = {
            pair: count for pair, count in reference.items() if count >= min_support
        }
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            assert store.pair_support_counts(min_support=min_support) == expected

    def test_support_counts_see_appended_actions(self, store_path):
        dataset = TaggingDataset(("kind",), ("genre",), name="inc")
        dataset.register_user("u1", {"kind": "a"})
        dataset.register_item("i1", {"genre": "b"})
        dataset.add_action("u1", "i1", ("t",))
        with SqliteTaggingStore.from_dataset(dataset, store_path) as store:
            assert store.attribute_support_counts() == {
                ("user.kind", "a"): 1,
                ("item.genre", "b"): 1,
            }
            store.append_action("u1", "i1", ("t2",))
            assert store.attribute_support_counts() == {
                ("user.kind", "a"): 2,
                ("item.genre", "b"): 2,
            }
            assert store.pair_support_counts() == {
                (("user.kind", "a"), ("item.genre", "b")): 2
            }


class TestTagHistogram:
    def test_histogram_matches_python_counter(self, corpus, store_path):
        reference = Counter()
        for row in range(corpus.n_actions):
            reference.update(corpus.tags_of(row))
        expected = sorted(reference.items(), key=lambda kv: (-kv[1], kv[0]))
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            assert store.tag_histogram() == expected
            assert store.tag_histogram(limit=3) == expected[:3]
