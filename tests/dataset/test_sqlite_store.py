"""Tests for the SQLite-backed tagging dataset store."""

from __future__ import annotations

import sqlite3

import pytest

from repro.dataset.loaders import dataset_to_records, load_sqlite, save_sqlite
from repro.dataset.sqlite_store import SqliteTaggingStore
from repro.dataset.store import TaggingDataset
from repro.dataset.synthetic import generate_movielens_style


@pytest.fixture()
def corpus() -> TaggingDataset:
    return generate_movielens_style(n_users=30, n_items=60, n_actions=400, seed=11)


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "corpus.sqlite"


class TestConnectionConfiguration:
    def test_pragmas_applied(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            assert store.pragma("journal_mode") == "wal"
            assert store.pragma("foreign_keys") == 1
            assert store.pragma("synchronous") == 1  # NORMAL
            assert store.pragma("busy_timeout") == 30000

    def test_foreign_keys_enforced(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            with pytest.raises(sqlite3.IntegrityError):
                store.connection.execute(
                    "INSERT INTO actions (user_id, item_id) VALUES ('ghost', 'ghost')"
                )

    def test_close_is_idempotent(self, corpus, store_path):
        store = SqliteTaggingStore.from_dataset(corpus, store_path)
        store.close()
        store.close()
        with pytest.raises(RuntimeError):
            _ = store.connection

    def test_schema_mismatch_rejected(self, corpus, store_path):
        SqliteTaggingStore.from_dataset(corpus, store_path).close()
        with pytest.raises(ValueError, match="different user/item schema"):
            SqliteTaggingStore.create(store_path, ("other",), ("schema",))


class TestRoundTrip:
    def test_lossless_round_trip(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            restored = store.to_dataset()
        assert restored.name == corpus.name
        assert restored.user_schema == corpus.user_schema
        assert restored.item_schema == corpus.item_schema
        assert dataset_to_records(restored) == dataset_to_records(corpus)

    def test_round_trip_preserves_unreferenced_registrations(self, store_path):
        dataset = TaggingDataset(("gender",), ("genre",), name="sparse")
        dataset.register_user("u1", {"gender": "male"})
        dataset.register_user("lurker", {"gender": "female"})  # never acts
        dataset.register_item("i1", {"genre": "drama"})
        dataset.add_action("u1", "i1", ["slow", "moving"], rating=3.5)
        with SqliteTaggingStore.from_dataset(dataset, store_path) as store:
            restored = store.to_dataset()
        assert restored.has_user("lurker")
        assert restored.user_attributes("lurker") == {"gender": "female"}
        assert restored.rating_of(0) == 3.5
        assert restored.tags_of(0) == ("slow", "moving")

    def test_loader_wrappers(self, corpus, store_path):
        save_sqlite(corpus, store_path)
        restored = load_sqlite(store_path)
        assert dataset_to_records(restored) == dataset_to_records(corpus)

    def test_counts(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            counts = store.counts()
        assert counts["actions"] == corpus.n_actions
        assert counts["users"] == corpus.n_users
        assert counts["items"] == corpus.n_items
        assert counts["tags"] == len(corpus.tag_vocabulary)


class TestIngestionAndStreaming:
    def test_streaming_iteration_order_and_content(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            streamed = list(store.iter_actions())
        assert len(streamed) == corpus.n_actions
        for row, action in enumerate(streamed):
            assert action["user_id"] == corpus.user_of(row)
            assert action["item_id"] == corpus.item_of(row)
            assert action["tags"] == corpus.tags_of(row)
            assert action["rating"] == corpus.rating_of(row)

    def test_incremental_appends_after_batch_ingest(self, corpus, store_path):
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            store.register_user("late-user", {attr: "unknown" for attr in corpus.user_schema})
            store.register_item("late-item", {attr: "unknown" for attr in corpus.item_schema})
            store.add_action("late-user", "late-item", ["fresh"], rating=1.0)
            restored = store.to_dataset()
        assert restored.n_actions == corpus.n_actions + 1
        assert restored.tags_of(corpus.n_actions) == ("fresh",)

    def test_tag_order_and_dedup_match_dataset(self, store_path):
        dataset = TaggingDataset(("gender",), ("genre",), name="dups")
        dataset.register_user("u", {"gender": "male"})
        dataset.register_item("i", {"genre": "noir"})
        dataset.add_action("u", "i", ["b", "a", "b", "c", "a"])
        with SqliteTaggingStore.from_dataset(dataset, store_path) as store:
            restored = store.to_dataset()
        assert restored.tags_of(0) == dataset.tags_of(0) == ("b", "a", "c")

    def test_reopen_reads_persisted_state(self, corpus, store_path):
        SqliteTaggingStore.from_dataset(corpus, store_path).close()
        with SqliteTaggingStore(store_path) as store:
            assert store.counts()["actions"] == corpus.n_actions
            assert store.user_schema == corpus.user_schema

    def test_double_ingest_refused(self, corpus, store_path):
        """Re-running an ingest script against the same file must not
        silently duplicate every action."""
        SqliteTaggingStore.from_dataset(corpus, store_path).close()
        with pytest.raises(ValueError, match="already holds"):
            SqliteTaggingStore.from_dataset(corpus, store_path)
        with SqliteTaggingStore(store_path) as store:
            assert store.counts()["actions"] == corpus.n_actions


class TestCrossThreadAccess:
    def test_insert_from_second_thread(self, corpus, store_path):
        """Regression: the connection used to be pinned to the opening
        thread, so any worker-thread insert raised ProgrammingError."""
        import threading

        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            errors = []

            def worker():
                try:
                    store.register_user(
                        "thread-user", {attr: "unknown" for attr in corpus.user_schema}
                    )
                    store.register_item(
                        "thread-item", {attr: "unknown" for attr in corpus.item_schema}
                    )
                    store.add_action("thread-user", "thread-item", ["cross-thread"])
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert errors == []
            assert store.has_user("thread-user")
            assert store.counts()["actions"] == corpus.n_actions + 1

    def test_concurrent_append_actions_all_land(self, corpus, store_path):
        """Two writer threads appending through the one-commit serving path
        must interleave cleanly (no lost rows, no integrity errors)."""
        import threading

        per_thread = 25
        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            errors = []

            def worker(label: str) -> None:
                try:
                    for i in range(per_thread):
                        store.append_action(
                            f"user-{label}",
                            f"item-{label}",
                            [f"tag-{label}-{i}"],
                            user_attributes={
                                attr: "unknown" for attr in corpus.user_schema
                            },
                            item_attributes={
                                attr: "unknown" for attr in corpus.item_schema
                            },
                        )
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(label,)) for label in ("a", "b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert store.counts()["actions"] == corpus.n_actions + 2 * per_thread


class TestSessionParity:
    def test_sqlite_loaded_dataset_solves_identically(self, corpus, store_path):
        """Groups, signatures and solve results match the in-memory original."""
        import numpy as np

        from repro.core.enumeration import GroupEnumerationConfig
        from repro.core.framework import TagDM
        from repro.core.problem import table1_problem

        with SqliteTaggingStore.from_dataset(corpus, store_path) as store:
            restored = store.to_dataset()

        def prepared(dataset):
            return TagDM(
                dataset,
                enumeration=GroupEnumerationConfig(min_support=5, max_groups=50),
                signature_backend="frequency",
                seed=3,
            ).prepare()

        original, reloaded = prepared(corpus), prepared(restored)
        assert [str(g.description) for g in original.groups] == [
            str(g.description) for g in reloaded.groups
        ]
        assert np.array_equal(original.signatures, reloaded.signatures)
        problem = table1_problem(6, k=3, min_support=original.default_support())
        for algorithm in ("sm-lsh-fo", "dv-fdp-fo", "dv-fdp-fi"):
            first = original.solve(problem, algorithm=algorithm)
            second = reloaded.solve(problem, algorithm=algorithm)
            assert first.objective_value == second.objective_value
            assert first.descriptions() == second.descriptions()
