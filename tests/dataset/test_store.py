"""Unit tests for the columnar tagging store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset.store import TaggingDataset


class TestSchemaAndRegistration:
    def test_requires_some_schema(self):
        with pytest.raises(ValueError):
            TaggingDataset(user_schema=(), item_schema=())

    def test_columns_are_prefixed(self, tiny_dataset):
        assert tiny_dataset.columns == (
            "user.gender",
            "user.age",
            "item.genre",
        )

    def test_register_user_rejects_unknown_attribute(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown user attributes"):
            tiny_dataset.register_user("u9", {"height": "tall"})

    def test_register_item_rejects_unknown_attribute(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown item attributes"):
            tiny_dataset.register_item("i9", {"studio": "acme"})

    def test_missing_attribute_defaults_to_unknown(self, tiny_dataset):
        tiny_dataset.register_user("u9", {"gender": "male"})
        assert tiny_dataset.user_attributes("u9")["age"] == "unknown"

    def test_has_user_and_item(self, tiny_dataset):
        assert tiny_dataset.has_user("u1")
        assert not tiny_dataset.has_user("nope")
        assert tiny_dataset.has_item("i2")
        assert not tiny_dataset.has_item("nope")


class TestIngestion:
    def test_add_action_requires_registered_user(self, tiny_dataset):
        with pytest.raises(KeyError):
            tiny_dataset.add_action("ghost", "i1", ["tag"])

    def test_add_action_requires_registered_item(self, tiny_dataset):
        with pytest.raises(KeyError):
            tiny_dataset.add_action("u1", "ghost", ["tag"])

    def test_add_action_returns_sequential_indices(self, tiny_dataset):
        index = tiny_dataset.add_action("u1", "i1", ["new-tag"])
        assert index == 4

    def test_duplicate_tags_are_deduplicated(self, tiny_dataset):
        index = tiny_dataset.add_action("u1", "i1", ["same", "same", "other"])
        assert tiny_dataset.tags_of(index) == ("same", "other")

    def test_rating_stored_and_optional(self, tiny_dataset):
        assert tiny_dataset.rating_of(0) == 4.0
        index = tiny_dataset.add_action("u2", "i2", ["x"])
        assert tiny_dataset.rating_of(index) is None

    def test_tag_vocabulary_counts_usage(self, tiny_dataset):
        assert tiny_dataset.tag_vocabulary.count_of("funny") == 2
        assert tiny_dataset.tag_vocabulary.count_of("gun") == 2
        assert tiny_dataset.tag_vocabulary.count_of("missing") == 0


class TestAccessors:
    def test_len_and_counts(self, tiny_dataset):
        assert len(tiny_dataset) == 4
        assert tiny_dataset.n_actions == 4
        assert tiny_dataset.n_users == 3
        assert tiny_dataset.n_items == 2

    def test_action_materialises_expanded_tuple(self, tiny_dataset):
        action = tiny_dataset.action(1)
        assert action.user_id == "u2"
        assert action.item_id == "i1"
        assert action.user_attributes == {"gender": "female", "age": "teen"}
        assert action.item_attributes == {"genre": "action"}
        assert action.tags == ("violence", "gory")

    def test_action_attribute_lookup_by_prefixed_column(self, tiny_dataset):
        action = tiny_dataset.action(0)
        assert action.attribute("user.gender") == "male"
        assert action.attribute("item.genre") == "action"
        with pytest.raises(KeyError):
            action.attribute("genre")

    def test_action_index_out_of_range(self, tiny_dataset):
        with pytest.raises(IndexError):
            tiny_dataset.action(99)

    def test_actions_iterates_selected_indices(self, tiny_dataset):
        actions = list(tiny_dataset.actions([0, 2]))
        assert [a.user_id for a in actions] == ["u1", "u3"]

    def test_distinct_values_and_counts(self, tiny_dataset):
        assert tiny_dataset.distinct_values("item.genre") == ["action", "comedy"]
        assert tiny_dataset.value_counts("user.gender") == {"male": 3, "female": 1}

    def test_unknown_column_raises(self, tiny_dataset):
        with pytest.raises(KeyError):
            tiny_dataset.column_values("user.height")
        with pytest.raises(KeyError):
            tiny_dataset.distinct_values("item.studio")


class TestFiltering:
    def test_empty_predicate_matches_everything(self, tiny_dataset):
        assert list(tiny_dataset.matching_indices({})) == [0, 1, 2, 3]

    def test_single_predicate(self, tiny_dataset):
        assert list(tiny_dataset.matching_indices({"item.genre": "comedy"})) == [2, 3]

    def test_conjunctive_predicate(self, tiny_dataset):
        rows = tiny_dataset.matching_indices(
            {"user.gender": "male", "item.genre": "action"}
        )
        assert list(rows) == [0]

    def test_predicate_with_unmatched_value_is_empty(self, tiny_dataset):
        assert len(tiny_dataset.matching_indices({"item.genre": "horror"})) == 0

    def test_predicate_with_unknown_column_raises(self, tiny_dataset):
        with pytest.raises(KeyError):
            tiny_dataset.matching_indices({"item.studio": "acme"})

    def test_support_counts_matching_tuples(self, tiny_dataset):
        assert tiny_dataset.support({"user.gender": "male"}) == 3

    def test_filter_returns_independent_subset(self, tiny_dataset):
        subset = tiny_dataset.filter({"item.genre": "comedy"})
        assert subset.n_actions == 2
        assert subset.n_users == 2
        # The subset is decoupled from the parent.
        subset.add_action("u3", "i2", ["more"])
        assert tiny_dataset.n_actions == 4

    def test_sample_smaller_than_dataset(self, tiny_dataset):
        sample = tiny_dataset.sample(2, seed=1)
        assert sample.n_actions == 2

    def test_sample_larger_than_dataset_is_clamped(self, tiny_dataset):
        sample = tiny_dataset.sample(100, seed=1)
        assert sample.n_actions == tiny_dataset.n_actions

    def test_sample_negative_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.sample(-1)

    def test_sample_is_deterministic(self, movielens_dataset):
        a = movielens_dataset.sample(50, seed=3)
        b = movielens_dataset.sample(50, seed=3)
        assert [x.user_id for x in a.actions()] == [x.user_id for x in b.actions()]


class TestAggregates:
    def test_tags_for_indices_concatenates(self, tiny_dataset):
        tags = tiny_dataset.tags_for_indices([0, 3])
        assert tags == ["gun", "explosion", "funny", "gun"]

    def test_users_and_items_for_indices(self, tiny_dataset):
        assert tiny_dataset.users_for_indices([0, 1]) == {"u1", "u2"}
        assert tiny_dataset.items_for_indices([2, 3]) == {"i2"}

    def test_stats(self, tiny_dataset):
        stats = tiny_dataset.stats()
        assert stats.n_actions == 4
        assert stats.n_users == 3
        assert stats.n_items == 2
        assert stats.n_distinct_tags == 6
        assert stats.n_tag_assignments == 8
        assert stats.mean_tags_per_action == pytest.approx(2.0)
        assert stats.as_dict()["n_actions"] == 4


class TestPropertyBased:
    @given(
        genders=st.lists(st.sampled_from(["male", "female"]), min_size=1, max_size=30)
    )
    @settings(max_examples=30, deadline=None)
    def test_posting_lists_partition_rows(self, genders):
        """Every row matches exactly one value of an attribute it carries."""
        dataset = TaggingDataset(user_schema=("gender",), item_schema=("kind",))
        dataset.register_item("i", {"kind": "only"})
        for position, gender in enumerate(genders):
            user_id = f"u{position}"
            dataset.register_user(user_id, {"gender": gender})
            dataset.add_action(user_id, "i", ["t"])
        male_rows = set(dataset.matching_indices({"user.gender": "male"}).tolist())
        female_rows = set(dataset.matching_indices({"user.gender": "female"}).tolist())
        assert male_rows | female_rows == set(range(len(genders)))
        assert male_rows & female_rows == set()

    @given(n=st.integers(min_value=0, max_value=40), seed=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_sample_size_respected(self, n, seed):
        dataset = TaggingDataset(user_schema=("gender",), item_schema=("kind",))
        dataset.register_user("u", {"gender": "male"})
        dataset.register_item("i", {"kind": "only"})
        for _ in range(25):
            dataset.add_action("u", "i", ["t"])
        sample = dataset.sample(n, seed=seed)
        assert sample.n_actions == min(n, 25)
