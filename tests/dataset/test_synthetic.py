"""Tests for the synthetic corpus generators."""

from __future__ import annotations

import pytest

from repro.dataset.delicious import DeliciousStyleConfig, generate_delicious_style
from repro.dataset.flickr import FlickrStyleConfig, generate_flickr_style
from repro.dataset.synthetic import (
    AGE_RANGES,
    GENRES,
    LOCATIONS,
    MovieLensStyleConfig,
    MovieLensStyleGenerator,
    OCCUPATIONS,
    generate_movielens_style,
)


class TestAttributePools:
    def test_pool_cardinalities_match_the_paper(self):
        """Section 6: gender 2, age 8, occupations 21, locations 52, genres 19."""
        assert len(AGE_RANGES) == 8
        assert len(OCCUPATIONS) == 21
        assert len(LOCATIONS) == 52
        assert len(GENRES) == 19


class TestMovieLensStyleGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MovieLensStyleConfig(n_users=0)
        with pytest.raises(ValueError):
            MovieLensStyleConfig(n_topics=1)
        with pytest.raises(ValueError):
            MovieLensStyleConfig(demographic_topic_shift=2.0)

    def test_generated_shape(self):
        dataset = generate_movielens_style(
            n_users=30, n_items=60, n_actions=300, seed=1
        )
        assert dataset.n_actions == 300
        assert dataset.n_users <= 30
        assert dataset.n_items <= 60
        assert dataset.user_schema == ("gender", "age", "occupation", "location")
        assert dataset.item_schema == ("genre", "actor", "director")

    def test_every_action_has_at_least_one_tag(self):
        dataset = generate_movielens_style(n_users=20, n_items=40, n_actions=200, seed=2)
        assert all(len(dataset.tags_of(i)) >= 1 for i in range(dataset.n_actions))

    def test_ratings_are_in_valid_levels(self):
        config = MovieLensStyleConfig(n_users=20, n_items=40, n_actions=150, seed=3)
        dataset = MovieLensStyleGenerator(config).generate()
        levels = set(config.rating_levels)
        assert all(dataset.rating_of(i) in levels for i in range(dataset.n_actions))

    def test_generation_is_deterministic(self):
        a = generate_movielens_style(n_users=25, n_items=50, n_actions=200, seed=7)
        b = generate_movielens_style(n_users=25, n_items=50, n_actions=200, seed=7)
        assert [a.tags_of(i) for i in range(a.n_actions)] == [
            b.tags_of(i) for i in range(b.n_actions)
        ]
        assert [a.user_of(i) for i in range(a.n_actions)] == [
            b.user_of(i) for i in range(b.n_actions)
        ]

    def test_different_seeds_differ(self):
        a = generate_movielens_style(n_users=25, n_items=50, n_actions=200, seed=1)
        b = generate_movielens_style(n_users=25, n_items=50, n_actions=200, seed=2)
        assert [a.tags_of(i) for i in range(a.n_actions)] != [
            b.tags_of(i) for i in range(b.n_actions)
        ]

    def test_attribute_values_come_from_pools(self, movielens_dataset):
        assert set(movielens_dataset.distinct_values("item.genre")) <= set(GENRES)
        assert set(movielens_dataset.distinct_values("user.age")) <= set(AGE_RANGES)
        assert set(movielens_dataset.distinct_values("user.location")) <= set(LOCATIONS)

    def test_tag_vocabulary_is_long_tailed(self, movielens_dataset):
        counts = sorted(
            (count for _, count in movielens_dataset.tag_vocabulary.most_common()),
            reverse=True,
        )
        top_decile = sum(counts[: max(1, len(counts) // 10)])
        assert top_decile / sum(counts) > 0.3

    def test_genre_groups_have_distinct_tag_profiles(self, movielens_dataset):
        """Two different genres should not share their most frequent tags entirely."""
        genres = movielens_dataset.distinct_values("item.genre")[:2]
        profiles = []
        for genre in genres:
            scoped = movielens_dataset.filter({"item.genre": genre})
            tags = scoped.tags_for_indices(range(scoped.n_actions))
            from collections import Counter

            profiles.append({t for t, _ in Counter(tags).most_common(10)})
        assert profiles[0] != profiles[1]


class TestOtherGenerators:
    def test_delicious_shape_and_determinism(self):
        config = DeliciousStyleConfig(n_users=30, n_bookmarks=60, n_actions=300, seed=4)
        a = generate_delicious_style(config)
        b = generate_delicious_style(config)
        assert a.n_actions == 300
        assert a.user_schema == ("expertise", "region")
        assert a.item_schema == ("domain", "page_type")
        assert [a.tags_of(i) for i in range(50)] == [b.tags_of(i) for i in range(50)]

    def test_delicious_config_validation(self):
        with pytest.raises(ValueError):
            DeliciousStyleConfig(n_users=0)
        with pytest.raises(ValueError):
            DeliciousStyleConfig(functional_tag_probability=2.0)

    def test_flickr_shape_and_determinism(self):
        config = FlickrStyleConfig(n_users=25, n_photos=50, n_actions=250, seed=6)
        a = generate_flickr_style(config)
        b = generate_flickr_style(config)
        assert a.n_actions == 250
        assert a.user_schema == ("camera", "country")
        assert a.item_schema == ("scene", "season")
        assert [a.tags_of(i) for i in range(50)] == [b.tags_of(i) for i in range(50)]

    def test_flickr_config_validation(self):
        with pytest.raises(ValueError):
            FlickrStyleConfig(n_actions=0)
        with pytest.raises(ValueError):
            FlickrStyleConfig(technique_tag_probability=-0.1)

    def test_flickr_dslr_users_use_more_technique_tags(self):
        from repro.dataset.flickr import TECHNIQUE_TAGS

        dataset = generate_flickr_style(
            FlickrStyleConfig(n_users=60, n_photos=100, n_actions=1500, seed=8)
        )
        technique = set(TECHNIQUE_TAGS)

        def technique_share(camera: str) -> float:
            scoped = dataset.filter({"user.camera": camera})
            tags = scoped.tags_for_indices(range(scoped.n_actions))
            if not tags:
                return 0.0
            return sum(1 for tag in tags if tag in technique) / len(tags)

        assert technique_share("dslr") > technique_share("phone")
