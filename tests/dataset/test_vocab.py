"""Unit and property tests for the tag vocabulary models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset.vocab import TagVocabulary, ZipfTagModel


class TestTagVocabulary:
    def test_add_and_lookup(self):
        vocab = TagVocabulary(["a", "b"])
        assert len(vocab) == 2
        assert vocab.id_of("a") == 0
        assert vocab.token_of(1) == "b"
        assert "a" in vocab and "z" not in vocab

    def test_add_is_idempotent(self):
        vocab = TagVocabulary()
        first = vocab.add("x")
        second = vocab.add("x")
        assert first == second
        assert len(vocab) == 1

    def test_record_usage_and_counts(self):
        vocab = TagVocabulary()
        vocab.record_usage("a")
        vocab.record_usage("a", count=2)
        vocab.record_usage("b")
        assert vocab.count_of("a") == 3
        assert vocab.count_of("b") == 1
        assert vocab.count_of("missing") == 0

    def test_most_common_orders_by_count_then_token(self):
        vocab = TagVocabulary()
        for token, count in (("x", 2), ("y", 5), ("z", 2)):
            vocab.record_usage(token, count)
        assert vocab.most_common() == [("y", 5), ("x", 2), ("z", 2)]
        assert vocab.most_common(1) == [("y", 5)]

    def test_merge_combines_counts(self):
        left = TagVocabulary()
        left.record_usage("a", 2)
        right = TagVocabulary()
        right.record_usage("a", 1)
        right.record_usage("b", 4)
        merged = left.merge(right)
        assert merged.count_of("a") == 3
        assert merged.count_of("b") == 4

    def test_unknown_token_id_raises(self):
        vocab = TagVocabulary(["a"])
        with pytest.raises(KeyError):
            vocab.id_of("missing")
        with pytest.raises(IndexError):
            vocab.token_of(5)

    @given(tokens=st.lists(st.text(min_size=1, max_size=5), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_ids_are_dense_and_stable(self, tokens):
        vocab = TagVocabulary()
        for token in tokens:
            vocab.add(token)
        distinct = list(dict.fromkeys(tokens))
        assert len(vocab) == len(distinct)
        for position, token in enumerate(distinct):
            assert vocab.id_of(token) == position
            assert vocab.token_of(position) == token


class TestZipfTagModel:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            ZipfTagModel(vocabulary_size=0)
        with pytest.raises(ValueError):
            ZipfTagModel(n_topics=0)
        with pytest.raises(ValueError):
            ZipfTagModel(topic_concentration=1.5)

    def test_vocabulary_size_and_tokens(self):
        model = ZipfTagModel(vocabulary_size=50, n_topics=5, seed=1)
        assert len(model.vocabulary) == 50
        assert model.token(0) == "tag_00000"

    def test_sample_tags_returns_distinct_tokens(self):
        model = ZipfTagModel(vocabulary_size=100, n_topics=5, seed=1)
        mixture = np.full(5, 0.2)
        tags = model.sample_tags(mixture, 8)
        assert len(tags) == len(set(tags)) == 8
        assert all(tag.startswith("tag_") for tag in tags)

    def test_sample_tags_zero_request(self):
        model = ZipfTagModel(vocabulary_size=20, n_topics=3, seed=1)
        assert model.sample_tags(np.full(3, 1 / 3), 0) == []

    def test_sample_tags_rejects_bad_mixture_length(self):
        model = ZipfTagModel(vocabulary_size=20, n_topics=3, seed=1)
        with pytest.raises(ValueError):
            model.sample_tags([0.5, 0.5], 2)

    def test_zero_mixture_falls_back_to_uniform(self):
        model = ZipfTagModel(vocabulary_size=20, n_topics=4, seed=1)
        tags = model.sample_tags(np.zeros(4), 3)
        assert len(tags) == 3

    def test_generation_is_deterministic_per_seed(self):
        mixture = np.array([0.7, 0.1, 0.1, 0.1])
        tags_a = ZipfTagModel(vocabulary_size=60, n_topics=4, seed=5).sample_tags(mixture, 5)
        tags_b = ZipfTagModel(vocabulary_size=60, n_topics=4, seed=5).sample_tags(mixture, 5)
        assert tags_a == tags_b

    def test_topic_concentration_biases_towards_topic_block(self):
        """A pure topic-0 mixture should draw mostly from topic 0's block."""
        model = ZipfTagModel(
            vocabulary_size=100, n_topics=5, seed=2, topic_concentration=0.95
        )
        mixture = np.zeros(5)
        mixture[0] = 1.0
        draws = []
        for _ in range(40):
            draws.extend(model.sample_tags(mixture, 3))
        block = {model.token(i) for i in range(0, 20)}  # topic 0 owns tokens 0..19
        in_block = sum(1 for tag in draws if tag in block)
        assert in_block / len(draws) > 0.5

    def test_expected_frequencies_is_distribution(self):
        model = ZipfTagModel(vocabulary_size=40, n_topics=4, seed=3)
        frequencies = model.expected_frequencies()
        assert frequencies.shape == (40,)
        assert frequencies.min() >= 0
        assert frequencies.sum() == pytest.approx(1.0)

    def test_global_distribution_is_long_tailed(self):
        """Top-10% of tokens should carry a disproportionate share of mass."""
        model = ZipfTagModel(vocabulary_size=200, n_topics=5, seed=4)
        probs = np.sort(model.expected_frequencies())[::-1]
        top_share = probs[:20].sum()
        assert top_share > 0.25
