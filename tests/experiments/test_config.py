"""Tests for the experiment configuration."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults_match_paper_parameters(self):
        config = ExperimentConfig()
        assert config.k == 3
        assert config.support_fraction == pytest.approx(0.01)
        assert config.user_threshold == 0.5
        assert config.item_threshold == 0.5
        assert config.signature_dimensions == 25
        assert config.lsh_bits == 10
        assert config.lsh_tables == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(k=1)
        with pytest.raises(ValueError):
            ExperimentConfig(support_fraction=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(max_groups=2)
        with pytest.raises(ValueError):
            ExperimentConfig(scaling_bins=(0.5, 1.5))

    def test_quick_profile_is_smaller(self):
        quick = ExperimentConfig.quick()
        default = ExperimentConfig()
        assert quick.n_actions < default.n_actions
        assert quick.max_groups < default.max_groups

    def test_paper_scale_profile(self):
        paper = ExperimentConfig.paper_scale()
        assert paper.n_actions == 33000
        assert paper.max_groups is None
        assert paper.signature_backend == "lda"
