"""Tests for the per-figure experiment drivers and reporting."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    case_studies,
    clear_environment_cache,
    experiment_environment,
    figure_1_2_tag_clouds,
    figure_3_similarity_time,
    figure_4_similarity_quality,
    figure_5_diversity_time,
    figure_6_diversity_quality,
    figure_7_scaling_time,
    figure_8_scaling_quality,
    figure_9_user_study,
    run_diversity_experiment,
    run_scaling_experiment,
    run_similarity_experiment,
    table_1_problem_instances,
    table_2_capabilities,
)
from repro.experiments.reporting import format_rows, render_figure


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        n_users=60,
        n_items=120,
        n_actions=1200,
        max_groups=40,
        seed=5,
        scaling_bins=(0.5, 1.0),
        user_study_judges=12,
    )


@pytest.fixture(scope="module")
def similarity_runs(config):
    return run_similarity_experiment(config)


@pytest.fixture(scope="module")
def diversity_runs(config):
    return run_diversity_experiment(config)


@pytest.fixture(scope="module")
def scaling_rows(config):
    return run_scaling_experiment(config)


class TestEnvironmentCache:
    def test_environment_is_cached(self, config):
        first = experiment_environment(config)
        second = experiment_environment(config)
        assert first[0] is second[0]
        assert first[1] is second[1]

    def test_clear_cache(self, config):
        first = experiment_environment(config)
        clear_environment_cache()
        second = experiment_environment(config)
        assert first[0] is not second[0]


class TestStaticTables:
    def test_table_1_rows(self):
        figure = table_1_problem_instances()
        assert len(figure.rows) == 6
        assert figure.rows[0] == {
            "id": 1,
            "user": "similarity",
            "item": "similarity",
            "tag": "similarity",
            "C": "U,I",
            "O": "T",
        }
        assert all(row["C"] == "U,I" and row["O"] == "T" for row in figure.rows)

    def test_table_2_rows(self):
        figure = table_2_capabilities()
        assert len(figure.rows) == 6
        assert {row["algorithm"] for row in figure.rows} == {"LSH based", "FDP based"}

    def test_render_produces_text(self):
        text = table_1_problem_instances().render()
        assert "Table 1" in text
        assert "similarity" in text


class TestTagCloudFigure:
    def test_clouds_and_notes(self, config):
        figure = figure_1_2_tag_clouds(config)
        assert figure.rows
        assert "cloud_all" in figure.extra and "cloud_location" in figure.extra
        assert figure.extra["cloud_all"].entries
        assert "director with most tagging actions" in figure.notes
        assert "==" in figure.extra["rendered_all"]


class TestQuantitativeFigures:
    def test_similarity_runs_cover_grid(self, similarity_runs):
        combos = {(run.problem_id, run.algorithm) for run in similarity_runs}
        assert combos == {
            (p, a)
            for p in (1, 2, 3)
            for a in ("exact", "sm-lsh-fi", "sm-lsh-fo")
        }

    def test_exact_costlier_than_heuristics(self, similarity_runs):
        """The paper's headline shape: Exact dominates the heuristics' cost.

        At this deliberately tiny test scale wall-clock times can be noisy,
        so the machine-independent evaluation count is compared; the
        benchmark suite compares wall-clock at realistic scale.
        """
        by_problem = {}
        for run in similarity_runs:
            by_problem.setdefault(run.problem_id, {})[run.algorithm] = run
        for problem_id, runs in by_problem.items():
            assert runs["exact"].evaluations > runs["sm-lsh-fo"].evaluations
            assert runs["exact"].evaluations > runs["sm-lsh-fi"].evaluations

    def test_heuristic_quality_close_to_exact_when_feasible(self, similarity_runs):
        by_problem = {}
        for run in similarity_runs:
            by_problem.setdefault(run.problem_id, {})[run.algorithm] = run
        for problem_id, runs in by_problem.items():
            exact_run = runs["exact"]
            fold_run = runs["sm-lsh-fo"]
            if exact_run.quality is not None and fold_run.quality is not None:
                assert fold_run.quality >= 0.6 * exact_run.quality

    def test_diversity_runs_cover_grid(self, diversity_runs):
        combos = {(run.problem_id, run.algorithm) for run in diversity_runs}
        assert combos == {
            (p, a)
            for p in (4, 5, 6)
            for a in ("exact", "dv-fdp-fi", "dv-fdp-fo")
        }

    def test_fdp_cheaper_than_exact(self, diversity_runs):
        by_problem = {}
        for run in diversity_runs:
            by_problem.setdefault(run.problem_id, {})[run.algorithm] = run
        for runs in by_problem.values():
            assert runs["exact"].evaluations > runs["dv-fdp-fo"].evaluations

    def test_figure_wrappers_reuse_runs(self, config, similarity_runs, diversity_runs):
        fig3 = figure_3_similarity_time(config, runs=similarity_runs)
        fig4 = figure_4_similarity_quality(config, runs=similarity_runs)
        fig5 = figure_5_diversity_time(config, runs=diversity_runs)
        fig6 = figure_6_diversity_quality(config, runs=diversity_runs)
        assert len(fig3.rows) == len(similarity_runs)
        assert len(fig5.rows) == len(diversity_runs)
        assert {"time_s", "problem", "algorithm"} <= set(fig3.rows[0])
        assert {"quality", "objective"} <= set(fig4.rows[0])
        assert "Figure 5" in fig5.name and "Figure 6" in fig6.name


class TestScalingFigures:
    def test_rows_per_bin(self, config, scaling_rows):
        tuples_seen = {row["tuples"] for row in scaling_rows}
        assert len(tuples_seen) == len(config.scaling_bins)
        # 4 runs per bin: (problem 1, problem 6) x (exact, heuristic).
        assert len(scaling_rows) == 4 * len(config.scaling_bins)

    def test_figure_wrappers(self, config, scaling_rows):
        fig7 = figure_7_scaling_time(config, rows=scaling_rows)
        fig8 = figure_8_scaling_quality(config, rows=scaling_rows)
        assert len(fig7.rows) == len(scaling_rows)
        assert {"tuples", "time_s"} <= set(fig7.rows[0])
        assert {"tuples", "quality", "null_result"} <= set(fig8.rows[0])

    def test_scaling_rows_carry_null_result(self, scaling_rows):
        """as_row emits null_result so quality tables can tell a null
        result apart from a feasible-but-small one."""
        for row in scaling_rows:
            assert "null_result" in row
            assert row["null_result"] == (row["k"] == 0)

    def test_exact_time_grows_with_tuples(self, scaling_rows):
        exact_problem1 = sorted(
            (row for row in scaling_rows if row["algorithm"] == "exact" and row["problem"] == "problem-1"),
            key=lambda row: row["tuples"],
        )
        if len(exact_problem1) >= 2:
            assert exact_problem1[-1]["evaluations"] >= exact_problem1[0]["evaluations"]


class TestUserStudyAndCaseStudies:
    def test_figure_9_prefers_2_3_6(self, config):
        figure = figure_9_user_study(config)
        outcome = figure.extra["outcome"]
        assert set(outcome.top_problems(3)) == {2, 3, 6}
        assert len(figure.rows) == 6

    def test_case_studies_return_two_studies(self, config):
        studies = case_studies(config)
        assert len(studies) == 2
        for study in studies:
            assert study.report.scoped_tuples > 0


class TestReporting:
    def test_format_rows_alignment(self):
        rows = [
            {"a": 1, "b": "x", "c": 0.5, "d": True},
            {"a": 22, "b": "yy", "c": None, "d": False},
        ]
        text = format_rows(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.5000" in text
        assert "yes" in text and "no" in text
        assert "-" in lines[3]

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_rows_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_rows(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_render_figure_includes_notes(self):
        text = render_figure("T", [{"x": 1}], notes="a note")
        assert "=== T ===" in text
        assert "a note" in text
