"""Tests for the experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_dataset,
    build_problem,
    build_session,
    run_algorithm,
    run_problem_suite,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        n_users=60, n_items=120, n_actions=1200, max_groups=40, seed=5
    )


@pytest.fixture(scope="module")
def environment(config):
    dataset = build_dataset(config)
    session = build_session(dataset, config)
    return dataset, session


class TestBuilders:
    def test_build_dataset_respects_scale(self, config, environment):
        dataset, _ = environment
        assert dataset.n_actions == config.n_actions
        assert dataset.user_schema == ("gender", "age", "occupation", "location")

    def test_build_session_caps_groups(self, config, environment):
        _, session = environment
        assert session.is_prepared
        assert session.n_groups <= config.max_groups

    def test_build_problem_support_threshold(self, config, environment):
        dataset, _ = environment
        problem = build_problem(1, dataset, config)
        assert problem.min_support == round(config.support_fraction * dataset.n_actions)
        assert problem.k_hi == config.k


class TestRunAlgorithm:
    def test_run_records_metrics(self, config, environment):
        dataset, session = environment
        problem = build_problem(6, dataset, config)
        run = run_algorithm(session, problem, "dv-fdp-fo", config, problem_id=6)
        assert run.algorithm == "dv-fdp-fo"
        assert run.elapsed_seconds > 0
        assert run.k_returned in (0, config.k)
        if run.k_returned >= 2:
            assert run.quality is not None
            assert 0.0 <= run.quality <= 1.0
        row = run.as_row()
        assert row["problem"] == "problem-6"
        assert "time_s" in row and "quality" in row

    def test_as_row_emits_null_result(self, config, environment):
        """Figure tables must distinguish null results from small-but-
        feasible ones; as_row used to drop the flag."""
        dataset, session = environment
        problem = build_problem(6, dataset, config)
        run = run_algorithm(session, problem, "dv-fdp-fo", config, problem_id=6)
        row = run.as_row()
        assert "null_result" in row
        assert row["null_result"] == run.null_result
        assert row["null_result"] == (run.k_returned == 0)

    def test_lsh_options_forwarded(self, config, environment):
        dataset, session = environment
        problem = build_problem(1, dataset, config)
        run = run_algorithm(session, problem, "sm-lsh-fo", config, problem_id=1)
        assert run.algorithm == "sm-lsh-fo"

    def test_run_problem_suite_covers_all_combinations(self, config, environment):
        dataset, session = environment
        runs = run_problem_suite(session, dataset, config, [1, 6], ["dv-fdp-fo", "sm-lsh-fo"])
        assert len(runs) == 4
        combos = {(run.problem_id, run.algorithm) for run in runs}
        assert combos == {
            (1, "dv-fdp-fo"),
            (1, "sm-lsh-fo"),
            (6, "dv-fdp-fo"),
            (6, "sm-lsh-fo"),
        }
