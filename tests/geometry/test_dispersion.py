"""Tests for the facility dispersion heuristics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.dispersion import (
    constrained_greedy_dispersion,
    exact_max_dispersion,
    greedy_max_avg_dispersion,
    greedy_max_min_dispersion,
)
from repro.geometry.distance import pairwise_cosine_distance


def random_distance_matrix(n: int, seed: int = 0) -> np.ndarray:
    """A symmetric matrix of cosine distances between random points."""
    rng = np.random.default_rng(seed)
    points = rng.random((n, 4))
    return pairwise_cosine_distance(points)


class TestValidation:
    def test_non_square_matrix_rejected(self):
        with pytest.raises(ValueError):
            greedy_max_avg_dispersion(np.zeros((2, 3)), 2)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            greedy_max_avg_dispersion(np.zeros((0, 0)), 1)

    def test_k_must_be_positive(self):
        matrix = random_distance_matrix(4)
        with pytest.raises(ValueError):
            greedy_max_avg_dispersion(matrix, 0)
        with pytest.raises(ValueError):
            greedy_max_min_dispersion(matrix, 0)
        with pytest.raises(ValueError):
            exact_max_dispersion(matrix, 0)

    def test_exact_objective_name_validated(self):
        with pytest.raises(ValueError):
            exact_max_dispersion(random_distance_matrix(4), 2, objective="max-sum")

    def test_exact_candidate_guard(self):
        matrix = random_distance_matrix(30)
        with pytest.raises(ValueError):
            exact_max_dispersion(matrix, 10, max_candidates=100)

    def test_constrained_requires_feasibility_source(self):
        with pytest.raises(ValueError):
            constrained_greedy_dispersion(random_distance_matrix(4), 2)

    def test_constrained_feasible_matrix_shape_checked(self):
        with pytest.raises(ValueError):
            constrained_greedy_dispersion(
                random_distance_matrix(4), 2, feasible_matrix=np.ones((3, 3), dtype=bool)
            )


class TestGreedyMaxAvg:
    def test_selects_k_distinct_indices(self):
        matrix = random_distance_matrix(12)
        result = greedy_max_avg_dispersion(matrix, 4)
        assert len(result.indices) == 4
        assert len(set(result.indices)) == 4
        assert result.objective_kind == "max-avg"

    def test_k_one_returns_single_point(self):
        result = greedy_max_avg_dispersion(random_distance_matrix(5), 1)
        assert len(result.indices) == 1
        assert result.objective == 0.0

    def test_k_larger_than_n_is_clamped(self):
        result = greedy_max_avg_dispersion(random_distance_matrix(3), 10)
        assert len(result.indices) == 3

    def test_seeds_with_farthest_pair(self):
        matrix = random_distance_matrix(10, seed=3)
        result = greedy_max_avg_dispersion(matrix, 2)
        upper = np.triu(matrix, k=1)
        best = np.unravel_index(np.argmax(upper), upper.shape)
        assert set(result.indices) == set(int(x) for x in best)

    def test_factor_4_bound_against_exact(self):
        """Theorem 4: greedy objective is within factor 4 of the optimum."""
        for seed in range(6):
            matrix = random_distance_matrix(10, seed=seed)
            exact = exact_max_dispersion(matrix, 3, objective="max-avg")
            greedy = greedy_max_avg_dispersion(matrix, 3)
            assert exact.objective <= 4.0 * greedy.objective + 1e-12
            assert greedy.objective <= exact.objective + 1e-12


class TestGreedyMaxMin:
    def test_objective_kind(self):
        result = greedy_max_min_dispersion(random_distance_matrix(8), 3)
        assert result.objective_kind == "max-min"
        assert len(result.indices) == 3

    def test_two_point_solution_is_optimal(self):
        matrix = random_distance_matrix(9, seed=5)
        greedy = greedy_max_min_dispersion(matrix, 2)
        exact = exact_max_dispersion(matrix, 2, objective="max-min")
        assert greedy.objective == pytest.approx(exact.objective)

    def test_max_min_factor_2_bound(self):
        """The farthest-point greedy is a 2-approximation for MAX-MIN."""
        for seed in range(6):
            matrix = random_distance_matrix(9, seed=seed)
            exact = exact_max_dispersion(matrix, 3, objective="max-min")
            greedy = greedy_max_min_dispersion(matrix, 3)
            assert exact.objective <= 2.0 * greedy.objective + 1e-9


class TestExact:
    def test_exact_beats_or_matches_greedy(self):
        matrix = random_distance_matrix(9, seed=2)
        exact = exact_max_dispersion(matrix, 3)
        greedy = greedy_max_avg_dispersion(matrix, 3)
        assert exact.objective >= greedy.objective - 1e-12

    def test_exact_on_trivial_instance(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = exact_max_dispersion(matrix, 2)
        assert set(result.indices) == {0, 1}
        assert result.objective == pytest.approx(1.0)


class TestConstrainedGreedy:
    def test_all_pairs_feasible_matches_unconstrained(self):
        matrix = random_distance_matrix(10, seed=4)
        feasible = np.ones((10, 10), dtype=bool)
        constrained = constrained_greedy_dispersion(matrix, 3, feasible_matrix=feasible)
        unconstrained = greedy_max_avg_dispersion(matrix, 3)
        assert constrained is not None
        assert set(constrained.indices) == set(unconstrained.indices)

    def test_callable_feasibility_equivalent_to_matrix(self):
        matrix = random_distance_matrix(8, seed=6)
        feasible = matrix > 0.05
        via_matrix = constrained_greedy_dispersion(matrix, 3, feasible_matrix=feasible)
        via_callable = constrained_greedy_dispersion(
            matrix, 3, pair_feasible=lambda a, b: bool(feasible[a, b])
        )
        assert via_matrix is not None and via_callable is not None
        assert set(via_matrix.indices) == set(via_callable.indices)

    def test_infeasible_everywhere_returns_none(self):
        matrix = random_distance_matrix(6)
        feasible = np.zeros((6, 6), dtype=bool)
        assert constrained_greedy_dispersion(matrix, 3, feasible_matrix=feasible) is None

    def test_infeasible_with_k_one_returns_single(self):
        matrix = random_distance_matrix(6)
        feasible = np.zeros((6, 6), dtype=bool)
        result = constrained_greedy_dispersion(matrix, 1, feasible_matrix=feasible)
        assert result is not None
        assert len(result.indices) == 1

    def test_selected_pairs_respect_feasibility(self):
        matrix = random_distance_matrix(12, seed=9)
        feasible = matrix > np.median(matrix)
        np.fill_diagonal(feasible, False)
        result = constrained_greedy_dispersion(matrix, 4, feasible_matrix=feasible)
        assert result is not None
        for a in result.indices:
            for b in result.indices:
                if a != b:
                    assert feasible[a, b]

    def test_partial_result_when_no_feasible_extension(self):
        """If only one feasible pair exists, the result stops at that pair."""
        matrix = random_distance_matrix(5, seed=10)
        feasible = np.zeros((5, 5), dtype=bool)
        feasible[0, 1] = feasible[1, 0] = True
        result = constrained_greedy_dispersion(matrix, 4, feasible_matrix=feasible)
        assert result is not None
        assert set(result.indices) == {0, 1}

    def test_seed_pairs_restrict_the_seed(self):
        matrix = random_distance_matrix(6, seed=11)
        feasible = np.ones((6, 6), dtype=bool)
        result = constrained_greedy_dispersion(
            matrix, 2, feasible_matrix=feasible, seed_pairs=[(2, 3)]
        )
        assert result is not None
        assert set(result.indices) == {2, 3}


class TestProperties:
    @given(n=st.integers(3, 12), k=st.integers(2, 5), seed=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_greedy_objectives_bounded_by_matrix_range(self, n, k, seed):
        matrix = random_distance_matrix(n, seed=seed)
        result = greedy_max_avg_dispersion(matrix, k)
        assert 0.0 <= result.objective <= matrix.max() + 1e-12
        assert len(result.indices) == min(k, n)

    @given(n=st.integers(4, 9), seed=st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_exact_max_avg_dominates_greedy(self, n, seed):
        matrix = random_distance_matrix(n, seed=seed)
        exact = exact_max_dispersion(matrix, 3)
        greedy = greedy_max_avg_dispersion(matrix, 3)
        assert exact.objective >= greedy.objective - 1e-12
