"""Tests for cosine similarity / distance utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.distance import (
    average_pairwise_distance,
    average_pairwise_similarity,
    cosine_distance,
    cosine_similarity,
    minimum_pairwise_distance,
    pairwise_cosine_distance,
    pairwise_cosine_similarity,
)


class TestCosine:
    def test_identical_vectors(self):
        assert cosine_similarity([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)
        assert cosine_distance([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_opposite_vectors(self):
        assert cosine_similarity([1, 0], [-1, 0]) == pytest.approx(-1.0)

    def test_zero_vector_gives_zero_similarity(self):
        assert cosine_similarity([0, 0], [1, 2]) == 0.0
        assert cosine_similarity([0, 0], [0, 0]) == 0.0

    def test_scale_invariance(self):
        assert cosine_similarity([1, 2], [2, 4]) == pytest.approx(1.0)
        assert cosine_similarity([1, 2], [10, 20]) == pytest.approx(
            cosine_similarity([1, 2], [2, 4])
        )


class TestPairwiseMatrices:
    def test_similarity_matrix_diagonal_and_symmetry(self):
        vectors = np.random.default_rng(0).random((5, 4))
        matrix = pairwise_cosine_similarity(vectors)
        assert matrix.shape == (5, 5)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_distance_matrix_zero_diagonal(self):
        vectors = np.random.default_rng(1).random((4, 3))
        matrix = pairwise_cosine_distance(vectors)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.all(matrix >= -1e-12)

    def test_zero_rows_handled(self):
        vectors = np.array([[0.0, 0.0], [1.0, 0.0]])
        matrix = pairwise_cosine_similarity(vectors)
        assert matrix[0, 1] == 0.0
        assert matrix[0, 0] == 0.0

    def test_matrix_matches_scalar_function(self):
        vectors = np.random.default_rng(2).random((6, 5))
        matrix = pairwise_cosine_similarity(vectors)
        for i in range(6):
            for j in range(6):
                if i != j:
                    assert matrix[i, j] == pytest.approx(
                        cosine_similarity(vectors[i], vectors[j]), abs=1e-9
                    )


class TestAggregates:
    def test_average_similarity_of_identical_vectors(self):
        vectors = [[1, 1, 0]] * 3
        assert average_pairwise_similarity(vectors) == pytest.approx(1.0)
        assert average_pairwise_distance(vectors) == pytest.approx(0.0)

    def test_single_vector_conventions(self):
        assert average_pairwise_similarity([[1, 0]]) == 1.0
        assert average_pairwise_distance([[1, 0]]) == 0.0
        assert minimum_pairwise_distance([[1, 0]]) == 0.0

    def test_minimum_pairwise_distance(self):
        vectors = [[1, 0], [1, 0.01], [0, 1]]
        assert minimum_pairwise_distance(vectors) == pytest.approx(
            cosine_distance([1, 0], [1, 0.01]), abs=1e-9
        )

    def test_average_is_between_min_and_max_pair(self):
        vectors = np.random.default_rng(3).random((5, 4))
        distances = pairwise_cosine_distance(vectors)
        upper = distances[np.triu_indices(5, k=1)]
        average = average_pairwise_distance(vectors)
        assert upper.min() <= average <= upper.max()


class TestProperties:
    nonneg_vectors = arrays(
        dtype=float,
        shape=st.tuples(st.integers(2, 6), st.integers(2, 5)),
        elements=st.floats(0, 10, allow_nan=False, allow_infinity=False),
    )

    @given(vectors=nonneg_vectors)
    @settings(max_examples=50, deadline=None)
    def test_nonnegative_vectors_have_similarity_in_unit_interval(self, vectors):
        matrix = pairwise_cosine_similarity(vectors)
        assert np.all(matrix >= -1e-12)
        assert np.all(matrix <= 1.0 + 1e-12)

    @given(vectors=nonneg_vectors)
    @settings(max_examples=50, deadline=None)
    def test_similarity_plus_distance_is_one_off_diagonal(self, vectors):
        similarity = pairwise_cosine_similarity(vectors)
        distance = pairwise_cosine_distance(vectors)
        n = similarity.shape[0]
        off_diagonal = ~np.eye(n, dtype=bool)
        assert np.allclose((similarity + distance)[off_diagonal], 1.0)
