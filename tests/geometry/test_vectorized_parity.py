"""Parity: vectorized dispersion kernels vs. the naive seed references.

The vectorized greedy loops (incremental gain / min-distance arrays) and
the ``np.ix_`` subset scorers must reproduce the naive per-element
implementations retained in :mod:`repro.geometry.reference` -- same
selected indices, same objectives -- on randomized instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.dispersion import (
    _average_pairwise,
    _minimum_pairwise,
    greedy_max_avg_dispersion,
    greedy_max_min_dispersion,
)
from repro.geometry.distance import pairwise_cosine_distance
from repro.geometry.reference import (
    naive_average_pairwise,
    naive_greedy_max_avg_dispersion,
    naive_greedy_max_min_dispersion,
    naive_minimum_pairwise,
)


def random_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return pairwise_cosine_distance(rng.random((n, 5)))


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("n,k", [(12, 4), (30, 7), (50, 12)])
class TestGreedyParity:
    def test_max_avg_matches_naive(self, n, k, seed):
        matrix = random_matrix(n, seed)
        fast = greedy_max_avg_dispersion(matrix, k)
        slow = naive_greedy_max_avg_dispersion(matrix, k)
        assert fast.indices == slow.indices
        assert fast.objective == pytest.approx(slow.objective, rel=1e-12)

    def test_max_min_matches_naive(self, n, k, seed):
        matrix = random_matrix(n, seed)
        fast = greedy_max_min_dispersion(matrix, k)
        slow = naive_greedy_max_min_dispersion(matrix, k)
        assert fast.indices == slow.indices
        assert fast.objective == pytest.approx(slow.objective, rel=1e-12)


class TestSubsetScoringParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_average_and_minimum_pairwise(self, seed):
        rng = np.random.default_rng(100 + seed)
        matrix = random_matrix(20, seed)
        for size in (2, 3, 5, 9):
            indices = rng.choice(20, size=size, replace=False).tolist()
            assert _average_pairwise(matrix, indices) == pytest.approx(
                naive_average_pairwise(matrix, indices), rel=1e-12
            )
            assert _minimum_pairwise(matrix, indices) == pytest.approx(
                naive_minimum_pairwise(matrix, indices), rel=1e-12
            )

    def test_singletons(self):
        matrix = random_matrix(5, 0)
        assert _average_pairwise(matrix, [2]) == 0.0
        assert _minimum_pairwise(matrix, [2]) == 0.0


class TestTieBreakDeterminism:
    def test_lowest_index_wins_on_ties(self):
        # Four equidistant points: every candidate gain ties, so the
        # documented rule (np.argmax -> lowest index) must apply.
        matrix = np.ones((4, 4)) - np.eye(4)
        result = greedy_max_avg_dispersion(matrix, 3)
        assert result.indices == (0, 1, 2)
        result_min = greedy_max_min_dispersion(matrix, 3)
        assert result_min.indices == (0, 1, 2)
