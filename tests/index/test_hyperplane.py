"""Tests for the random-hyperplane hash family."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.hyperplane import RandomHyperplaneHasher, signature_to_key


class TestSignatureToKey:
    def test_packs_bits_msb_first(self):
        assert signature_to_key(np.array([True, False, True])) == 0b101
        assert signature_to_key(np.array([False, False])) == 0
        assert signature_to_key(np.array([True])) == 1


class TestHasher:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomHyperplaneHasher(0, 4)
        with pytest.raises(ValueError):
            RandomHyperplaneHasher(4, 0)

    def test_hash_bits_shape(self):
        hasher = RandomHyperplaneHasher(n_dimensions=8, n_bits=6, seed=1)
        vectors = np.random.default_rng(0).normal(size=(10, 8))
        bits = hasher.hash_bits(vectors)
        assert bits.shape == (10, 6)
        assert bits.dtype == bool

    def test_dimension_mismatch_raises(self):
        hasher = RandomHyperplaneHasher(n_dimensions=8, n_bits=4)
        with pytest.raises(ValueError):
            hasher.hash_bits(np.zeros((3, 5)))

    def test_same_seed_same_hashes(self):
        vectors = np.random.default_rng(1).normal(size=(5, 6))
        keys_a = RandomHyperplaneHasher(6, 8, seed=3).hash_keys(vectors)
        keys_b = RandomHyperplaneHasher(6, 8, seed=3).hash_keys(vectors)
        assert np.array_equal(keys_a, keys_b)

    def test_different_seeds_usually_differ(self):
        vectors = np.random.default_rng(1).normal(size=(20, 6))
        keys_a = RandomHyperplaneHasher(6, 8, seed=3).hash_keys(vectors)
        keys_b = RandomHyperplaneHasher(6, 8, seed=4).hash_keys(vectors)
        assert not np.array_equal(keys_a, keys_b)

    def test_identical_vectors_collide(self):
        hasher = RandomHyperplaneHasher(5, 10, seed=0)
        vector = np.random.default_rng(2).normal(size=5)
        key_a, _ = hasher.hash_one(vector)
        key_b, _ = hasher.hash_one(vector.copy())
        assert key_a == key_b

    def test_scaling_does_not_change_hash(self):
        """Sign random projections only see the direction of a vector."""
        hasher = RandomHyperplaneHasher(5, 10, seed=0)
        vector = np.random.default_rng(3).normal(size=5)
        key_a, _ = hasher.hash_one(vector)
        key_b, _ = hasher.hash_one(vector * 7.5)
        assert key_a == key_b

    def test_opposite_vectors_get_complementary_bits(self):
        hasher = RandomHyperplaneHasher(5, 10, seed=0)
        vector = np.random.default_rng(4).normal(size=5)
        # Perturb to avoid exact-zero projections where the >= 0 convention
        # breaks complementarity.
        _, bits_pos = hasher.hash_one(vector)
        _, bits_neg = hasher.hash_one(-vector)
        assert np.array_equal(bits_pos, ~bits_neg)

    def test_narrowed_keeps_prefix_hyperplanes(self):
        hasher = RandomHyperplaneHasher(6, 10, seed=5)
        narrow = hasher.narrowed(4)
        assert narrow.n_bits == 4
        assert np.allclose(narrow.hyperplanes, hasher.hyperplanes[:4])

    def test_narrowed_invalid_bits(self):
        hasher = RandomHyperplaneHasher(6, 10, seed=5)
        with pytest.raises(ValueError):
            hasher.narrowed(0)

    @given(
        seed=st.integers(0, 50),
        n_bits=st.integers(1, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_keys_fit_in_bit_width(self, seed, n_bits):
        hasher = RandomHyperplaneHasher(4, n_bits, seed=seed)
        vectors = np.random.default_rng(seed).normal(size=(8, 4))
        keys = hasher.hash_keys(vectors)
        assert np.all(keys >= 0)
        assert np.all(keys < 2 ** n_bits)


class TestCollisionGeometry:
    def test_nearby_vectors_collide_more_than_distant_ones(self):
        """Empirical check of Theorem 2's monotonicity in the angle."""
        rng = np.random.default_rng(7)
        base = rng.normal(size=16)
        close = base + 0.05 * rng.normal(size=16)
        far = rng.normal(size=16)

        def collision_rate(other: np.ndarray) -> float:
            collisions = 0
            trials = 200
            for seed in range(trials):
                hasher = RandomHyperplaneHasher(16, 1, seed=seed)
                collisions += int(
                    hasher.hash_one(base)[0] == hasher.hash_one(other)[0]
                )
            return collisions / trials

        assert collision_rate(close) > collision_rate(far)
