"""Tests for the multi-table cosine LSH index."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.index.lsh import CosineLshIndex, collision_probability


@pytest.fixture()
def clustered_vectors():
    """Two tight clusters of vectors plus their labels."""
    rng = np.random.default_rng(11)
    centre_a = rng.normal(size=12)
    centre_b = rng.normal(size=12)
    cluster_a = centre_a + 0.05 * rng.normal(size=(10, 12))
    cluster_b = centre_b + 0.05 * rng.normal(size=(10, 12))
    vectors = np.vstack([cluster_a, cluster_b])
    labels = [0] * 10 + [1] * 10
    return vectors, labels


class TestCollisionProbability:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert collision_probability(v, v, n_bits=8) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert collision_probability(a, b, n_bits=1) == pytest.approx(0.5)

    def test_opposite_vectors(self):
        a = np.array([1.0, 0.0])
        assert collision_probability(a, -a, n_bits=1) == pytest.approx(0.0, abs=1e-9)

    def test_probability_decreases_with_bits(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=5), rng.normal(size=5)
        p_small = collision_probability(a, b, n_bits=2)
        p_large = collision_probability(a, b, n_bits=10)
        assert p_large <= p_small

    def test_zero_vector_treated_as_right_angle(self):
        a = np.zeros(3)
        b = np.array([1.0, 0.0, 0.0])
        assert collision_probability(a, b, n_bits=1) == pytest.approx(0.5)


class TestIndexConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CosineLshIndex(4, n_bits=8, n_tables=0)

    def test_build_requires_vectors(self):
        with pytest.raises(ValueError):
            CosineLshIndex(4).build(np.zeros((0, 4)))

    def test_build_dimension_mismatch(self):
        with pytest.raises(ValueError):
            CosineLshIndex(4).build(np.zeros((3, 5)))

    def test_vectors_property_requires_build(self):
        index = CosineLshIndex(4)
        with pytest.raises(RuntimeError):
            _ = index.vectors
        assert index.n_indexed == 0

    def test_buckets_partition_rows(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = CosineLshIndex(12, n_bits=6, n_tables=2, seed=0).build(vectors)
        for table in range(2):
            members = [m for bucket in index.buckets(table) for m in bucket.members]
            assert sorted(members) == list(range(len(vectors)))

    def test_bucket_count_consistency(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = CosineLshIndex(12, n_bits=6, n_tables=3, seed=0).build(vectors)
        total = sum(index.bucket_count(t) for t in range(3))
        assert index.bucket_count() == total

    def test_stats_fields(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = CosineLshIndex(12, n_bits=4, seed=0).build(vectors)
        stats = index.stats()
        assert stats["buckets"] >= 1
        assert stats["max_size"] <= len(vectors)
        assert stats["mean_size"] > 0


class TestIndexBehaviour:
    def test_clustered_vectors_mostly_share_buckets(self, clustered_vectors):
        """Vectors from the same tight cluster should usually collide."""
        vectors, labels = clustered_vectors
        index = CosineLshIndex(12, n_bits=8, n_tables=1, seed=3).build(vectors)
        same_cluster_pairs = 0
        colliding_pairs = 0
        keys = {}
        for bucket in index.buckets(0):
            for member in bucket.members:
                keys[member] = bucket.key
        for i in range(len(vectors)):
            for j in range(i + 1, len(vectors)):
                if labels[i] == labels[j]:
                    same_cluster_pairs += 1
                    if keys[i] == keys[j]:
                        colliding_pairs += 1
        assert colliding_pairs / same_cluster_pairs > 0.5

    def test_bucket_of_returns_members_of_query_bucket(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = CosineLshIndex(12, n_bits=6, seed=1).build(vectors)
        bucket = index.bucket_of(vectors[0], table=0)
        assert 0 in bucket.members

    def test_bucket_of_invalid_table(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = CosineLshIndex(12, n_bits=6, seed=1).build(vectors)
        with pytest.raises(IndexError):
            index.bucket_of(vectors[0], table=5)

    def test_candidates_union_over_tables(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = CosineLshIndex(12, n_bits=6, n_tables=3, seed=1).build(vectors)
        candidates = index.candidates(vectors[0])
        assert 0 in candidates
        single_table = set(index.bucket_of(vectors[0], table=0).members)
        assert single_table <= set(candidates)

    def test_rebuild_with_fewer_bits_coarsens_buckets(self, clustered_vectors):
        vectors, _ = clustered_vectors
        fine = CosineLshIndex(12, n_bits=10, seed=2).build(vectors)
        coarse = fine.rebuild_with_bits(2)
        assert coarse.bucket_count() <= fine.bucket_count()
        assert coarse.n_indexed == fine.n_indexed

    def test_largest_bucket(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = CosineLshIndex(12, n_bits=2, seed=2).build(vectors)
        largest = index.largest_bucket()
        assert len(largest) == max(len(b) for b in index.buckets())

    def test_largest_bucket_requires_build(self):
        with pytest.raises(RuntimeError):
            CosineLshIndex(4).largest_bucket()
