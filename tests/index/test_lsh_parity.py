"""Parity: cached-projection LSH rebuild vs. from-scratch hashing.

``rebuild_with_bits`` on a built index must produce exactly the buckets
(keys, members, iteration order) that a fresh seed-style build at the
narrower width produces, because the hyperplane RNG stream is
prefix-stable and bucket grouping preserves first-appearance order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.reference import naive_lsh_tables
from repro.index.lsh import CosineLshIndex


@pytest.fixture(scope="module")
def vectors() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.normal(size=(300, 16))


def bucket_list(index: CosineLshIndex):
    return [(bucket.table, bucket.key, tuple(bucket.members)) for bucket in index.buckets()]


class TestRebuildParity:
    @pytest.mark.parametrize("narrow", [10, 7, 5, 2, 1])
    def test_truncation_matches_fresh_build(self, vectors, narrow):
        fine = CosineLshIndex(16, n_bits=10, n_tables=3, seed=5).build(vectors)
        fast = fine.rebuild_with_bits(narrow)
        slow = CosineLshIndex(16, n_bits=narrow, n_tables=3, seed=5).build(vectors)
        assert bucket_list(fast) == bucket_list(slow)

    @pytest.mark.parametrize("n_bits", [8, 4, 2])
    def test_build_matches_naive_setdefault_assembly(self, vectors, n_bits):
        index = CosineLshIndex(16, n_bits=n_bits, n_tables=2, seed=9).build(vectors)
        naive = naive_lsh_tables(vectors, n_bits=n_bits, n_tables=2, seed=9)
        for table in range(2):
            got = {
                bucket.key: tuple(bucket.members) for bucket in index.buckets(table)
            }
            assert got == naive[table]
            # Iteration order must match the seed dict-insertion order too.
            assert list(got) == list(naive[table])

    def test_widening_falls_back_to_full_build(self, vectors):
        coarse = CosineLshIndex(16, n_bits=4, n_tables=2, seed=5).build(vectors)
        wide = coarse.rebuild_with_bits(9)
        slow = CosineLshIndex(16, n_bits=9, n_tables=2, seed=5).build(vectors)
        assert bucket_list(wide) == bucket_list(slow)

    def test_members_are_shared_tuples(self, vectors):
        index = CosineLshIndex(16, n_bits=4, seed=1).build(vectors)
        first = next(index.buckets())
        again = next(index.buckets())
        assert isinstance(first.members, tuple)
        assert first.members is again.members  # no per-access copying
