"""The chaos suite: deterministic fault injection across every layer.

Every test arms a seeded :class:`~repro.serving.reliability.FaultPlan`
(or drives the reliability primitives directly with fake clocks) and
asserts the documented failure semantics from ``DEPLOYMENT.md``:
exactly-once keyed inserts, typed 429/503 shedding with ``Retry-After``,
breaker/budget-bounded router retries, and crash-safe snapshot rotation.
The multi-process kill drill lives in ``examples/chaos_demo.py``; here
workers are in-process so the whole suite stays fast and deterministic.
"""

from __future__ import annotations

import http.client
import json
import pickle
import threading
import time

import pytest

from repro.api import (
    HttpClient,
    OverloadedError,
    ProblemSpec,
    WorkerUnavailableError,
    api_error_from_payload,
)
from repro.api.client import HttpConnectionPool
from repro.api.errors import retry_after_header
from repro.core.enumeration import GroupEnumerationConfig
from repro.core.incremental import IncrementalTagDM
from repro.core.problem import table1_problem
from repro.dataset.sqlite_store import SqliteTaggingStore
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import (
    AdmissionPolicy,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    InjectedFault,
    PlacementTable,
    RetryBudget,
    TagDMHttpServer,
    TagDMRouter,
    TagDMServer,
)

SEED = 31
ENUMERATION = GroupEnumerationConfig(min_support=5, max_groups=60)


def make_dataset(n_actions=400, seed=SEED):
    return generate_movielens_style(
        n_users=40, n_items=80, n_actions=n_actions, seed=seed
    )


def action_for(dataset, row=0, tag="chaos"):
    return {
        "user_id": dataset.user_of(row),
        "item_id": dataset.item_of(row),
        "tags": [tag],
    }


def make_spec(shard):
    problem = table1_problem(1, k=4, min_support=shard.session.default_support())
    return ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")


# ----------------------------------------------------------------------
# Reliability primitives
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_open_after_threshold_and_half_opens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0, clock=clock)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.now = 0.5
        assert not breaker.allow()  # still inside the reset window
        clock.now = 1.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the one probe of this window
        assert not breaker.allow()  # everyone else keeps waiting

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now = 1.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open" and breaker.times_opened == 2
        clock.now = 2.5
        assert breaker.allow()
        breaker.record_success()  # probe succeeded
        assert breaker.state == "closed" and breaker.allow()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "closed"
        assert snapshot["consecutive_failures"] == 0
        assert snapshot["times_opened"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)


class TestRetryBudget:
    def test_exhaustion_and_backoff_shape(self):
        budget = RetryBudget(max_attempts=3, backoff_base=0.1, backoff_cap=0.25, jitter=0.0)
        assert not budget.exhausted(2)
        assert budget.exhausted(3)
        assert budget.delay(1) == pytest.approx(0.1)
        assert budget.delay(2) == pytest.approx(0.2)
        assert budget.delay(3) == pytest.approx(0.25)  # capped
        assert budget.delay(9) == pytest.approx(0.25)

    def test_seeded_jitter_is_deterministic_and_bounded(self):
        first = RetryBudget(backoff_base=0.1, jitter=0.5, seed=42)
        second = RetryBudget(backoff_base=0.1, jitter=0.5, seed=42)
        delays = [first.delay(n) for n in (1, 2, 3, 4)]
        assert delays == [second.delay(n) for n in (1, 2, 3, 4)]
        for attempt, delay in enumerate(delays, start=1):
            base = min(0.5, 0.1 * 2 ** (attempt - 1))
            assert base * 0.5 <= delay <= base * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(max_attempts=0)
        with pytest.raises(ValueError):
            RetryBudget(jitter=1.0)


class TestAdmissionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_inflight_solves=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(retry_after_seconds=0.0)


class TestFaultPlan:
    def test_at_and_times_and_arrivals(self):
        plan = FaultPlan([FaultRule("p", "crash", at=2)])
        assert plan.fire("p") is None  # arrival 1: not armed
        with pytest.raises(InjectedFault) as excinfo:
            plan.fire("p")  # arrival 2 fires
        assert excinfo.value.point == "p"
        assert plan.fire("p") is None  # times=1: spent
        assert plan.arrivals("p") == 3
        assert plan.fired == [("p", "crash", 2)]

    def test_when_actions_matches_context(self):
        plan = FaultPlan([FaultRule("p", "reset", when_actions=5)])
        assert plan.fire("p", n_actions=4) is None
        assert plan.fire("p", n_actions=5) == "reset"

    def test_sleep_and_caller_handled_actions(self):
        plan = FaultPlan(
            [
                FaultRule("s", "sleep", sleep_seconds=0.01),
                FaultRule("t", "truncate"),
            ]
        )
        started = time.monotonic()
        assert plan.fire("s") == "sleep"
        assert time.monotonic() - started >= 0.01
        assert plan.fire("t") == "truncate"

    def test_seeded_probability_replays_identically(self):
        rules = [FaultRule("p", "reset", times=100, probability=0.5)]
        first = FaultPlan(rules, seed=7)
        second = FaultPlan(rules, seed=7)
        pattern = [first.fire("p") for _ in range(20)]
        assert pattern == [second.fire("p") for _ in range(20)]
        assert "reset" in pattern and None in pattern  # both outcomes drawn

    def test_pickle_rebuilds_runtime_state(self):
        plan = FaultPlan([FaultRule("p", "reset", at=1)], seed=3)
        assert plan.fire("p") == "reset"
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.rules == plan.rules and clone.seed == 3
        assert clone.arrivals("p") == 0  # per-process counters reset
        assert clone.fire("p") == "reset"  # re-armed in the "new process"

    def test_once_needs_state_dir_and_latches_across_plans(self, tmp_path):
        with pytest.raises(ValueError):
            FaultPlan([FaultRule("p", "reset", once=True)])
        rules = [FaultRule("p", "reset", once=True)]
        first = FaultPlan(rules, state_dir=tmp_path)
        second = FaultPlan(rules, state_dir=tmp_path)  # "another process"
        assert first.fire("p") == "reset"
        assert second.fire("p") is None  # latch already claimed
        assert first.fire("p") is None


class TestOverloadedWire:
    def test_payload_round_trip_and_retry_after(self):
        error = OverloadedError("too busy", retry_after_seconds=2.5)
        assert error.status == 429
        back = api_error_from_payload(error.to_payload())
        assert isinstance(back, OverloadedError)
        assert back.retry_after_seconds == 2.5
        assert retry_after_header(back) == "3"  # ceiling, whole seconds
        assert retry_after_header(WorkerUnavailableError("down")) is None


# ----------------------------------------------------------------------
# Exactly-once inserts: store + incremental session
# ----------------------------------------------------------------------
class TestExactlyOnceStore:
    def test_request_log_records_recalls_and_trims(self, tmp_path):
        dataset = make_dataset()
        store = SqliteTaggingStore.from_dataset(dataset, tmp_path / "corpus.sqlite")
        assert store.recall_request("r-0") is None
        for index in range(6):
            store.record_request(f"r-{index}", {"actions_added": index}, keep_last=4)
        assert store.request_log_size() == 4  # oldest two trimmed
        assert store.recall_request("r-0") is None
        assert store.recall_request("r-5") == {"actions_added": 5}
        store.close()

    def test_same_request_id_applies_exactly_once(self, tmp_path):
        dataset = make_dataset()
        store = SqliteTaggingStore.from_dataset(dataset, tmp_path / "corpus.sqlite")
        session = IncrementalTagDM(
            dataset, enumeration=ENUMERATION, store=store, seed=SEED
        ).prepare()
        before = store.counts()["actions"]
        first = session.add_actions([action_for(dataset)], request_id="batch-1")
        assert first.actions_added == 1 and not first.deduplicated
        replay = session.add_actions([action_for(dataset)], request_id="batch-1")
        assert replay.deduplicated and replay.actions_added == 1  # original report
        assert store.counts()["actions"] == before + 1
        assert session.dataset.n_actions == before + 1
        # A different key applies normally.
        other = session.add_actions([action_for(dataset, row=1)], request_id="batch-2")
        assert not other.deduplicated
        assert store.counts()["actions"] == before + 2
        store.close()

    def test_report_survives_the_wire_round_trip(self, tmp_path):
        dataset = make_dataset()
        store = SqliteTaggingStore.from_dataset(dataset, tmp_path / "corpus.sqlite")
        session = IncrementalTagDM(
            dataset, enumeration=ENUMERATION, store=store, seed=SEED
        ).prepare()
        session.add_actions([action_for(dataset)], request_id="wire-1")
        recalled = session.add_actions([action_for(dataset)], request_id="wire-1")
        payload = recalled.to_dict()
        assert payload["deduplicated"] is True
        assert payload["actions_added"] == 1
        store.close()

    def test_close_truncates_the_wal(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "corpus.sqlite"
        store = SqliteTaggingStore.from_dataset(dataset, path)
        store.add_action(**{**action_for(dataset), "tags": ("wal",)})
        wal = path.with_name(path.name + "-wal")
        assert wal.exists() and wal.stat().st_size > 0  # WAL carrying frames
        store.close()
        assert not wal.exists() or wal.stat().st_size == 0


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_insert_queue_watermark_sheds_with_429(self, tmp_path):
        server = TagDMServer(
            tmp_path / "root",
            enumeration=ENUMERATION,
            seed=SEED,
            admission=AdmissionPolicy(max_queue_depth=1, retry_after_seconds=2.0),
            fault_plan=FaultPlan(
                [FaultRule("shard.apply", "sleep", at=1, sleep_seconds=1.0)]
            ),
        )
        dataset = make_dataset()
        shard = server.add_corpus("movies", dataset)
        # First batch: the writer dequeues it and stalls inside the
        # injected sleep (wait for the dequeue before continuing).
        first = shard.submit_insert([action_for(dataset, row=0, tag="q-0")])
        deadline = time.monotonic() + 5.0
        while shard.stats()["queue_depth"] > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        # Second batch sits in the queue at the watermark; the third is shed.
        queued = shard.submit_insert([action_for(dataset, row=1, tag="q-1")])
        with pytest.raises(OverloadedError) as excinfo:
            shard.submit_insert([action_for(dataset, row=2, tag="shed")])
        assert excinfo.value.retry_after_seconds == 2.0
        assert excinfo.value.details["corpus"] == "movies"
        for future in (first, queued):
            future.result(timeout=10.0)
        assert shard.stats()["inserts_shed"] == 1
        server.close()

    def test_inflight_solve_watermark_sheds_with_429(self, tmp_path):
        server = TagDMServer(
            tmp_path / "root",
            enumeration=ENUMERATION,
            seed=SEED,
            admission=AdmissionPolicy(max_inflight_solves=1, retry_after_seconds=1.0),
            fault_plan=FaultPlan(
                [FaultRule("shard.solve", "sleep", at=1, sleep_seconds=1.0)]
            ),
        )
        shard = server.add_corpus("movies", make_dataset())
        spec = make_spec(shard)
        problem, algorithm = spec.validate()
        started = threading.Event()
        outcome = {}

        def slow_solve():
            started.set()
            outcome["result"] = shard.solve(problem, algorithm=algorithm)

        solver = threading.Thread(target=slow_solve)
        solver.start()
        started.wait()
        time.sleep(0.2)  # let the solve enter the injected sleep
        with pytest.raises(OverloadedError):
            shard.solve(problem, algorithm=algorithm)
        solver.join(timeout=30.0)
        assert "result" in outcome  # the admitted solve still finished
        assert shard.stats()["solves_shed"] == 1
        server.close()

    def test_http_answers_429_with_retry_after_header(self, tmp_path):
        server = TagDMServer(
            tmp_path / "root",
            enumeration=ENUMERATION,
            seed=SEED,
            admission=AdmissionPolicy(max_inflight_solves=1, retry_after_seconds=2.0),
            fault_plan=FaultPlan(
                [FaultRule("shard.solve", "sleep", at=1, sleep_seconds=1.5)]
            ),
        )
        shard = server.add_corpus("movies", make_dataset())
        spec = make_spec(shard)
        front = TagDMHttpServer(server).start()
        body = json.dumps(spec.to_dict()).encode("utf-8")
        pool = HttpConnectionPool(front.url, request_timeout=30.0)

        def background_solve():
            pool_bg = HttpConnectionPool(front.url, request_timeout=30.0)
            try:
                pool_bg.request(
                    "POST", "/corpora/movies/solve", body=body,
                    headers={"Content-Type": "application/json"},
                )
            finally:
                pool_bg.close()

        solver = threading.Thread(target=background_solve)
        solver.start()
        time.sleep(0.3)  # the background solve is inside the injected sleep
        status, headers, data = pool.request(
            "POST", "/corpora/movies/solve", body=body,
            headers={"Content-Type": "application/json"},
        )
        solver.join(timeout=30.0)
        assert status == 429
        assert headers.get("retry-after") == "2"
        error = api_error_from_payload(json.loads(data.decode("utf-8")))
        assert isinstance(error, OverloadedError)
        assert error.retry_after_seconds == 2.0
        pool.close()
        front.stop()
        server.close()


# ----------------------------------------------------------------------
# HTTP transport faults
# ----------------------------------------------------------------------
class TestHttpTransportFaults:
    def test_keyed_insert_replays_through_a_reset_exactly_once(self, tmp_path):
        # http.pre_write "reset" drops the connection *after* the insert
        # applied but before any response byte: the client's ambiguous
        # retry is only safe because the Idempotency-Key dedups it.
        plan = FaultPlan([FaultRule("http.pre_write", "reset", at=2)])
        server = TagDMServer(
            tmp_path / "root", enumeration=ENUMERATION, seed=SEED, fault_plan=plan
        )
        dataset = make_dataset()
        shard = server.add_corpus("movies", dataset)
        front = TagDMHttpServer(server, fault_plan=plan).start()
        client = HttpClient(front.url, request_timeout=30.0)
        before = client.stats("movies")["actions"]  # arrival 1 warms the pool
        report = client.insert(
            "movies", [action_for(dataset)], idempotency_key="chaos-key"
        )  # arrival 2: applied, response reset, replay dedups
        assert report.actions_added == 1
        assert report.deduplicated  # the replay answered from the request log
        assert client.stats("movies")["actions"] == before + 1  # exactly once
        assert shard.stats()["dedup_hits"] == 1
        assert ("http.pre_write", "reset", 2) in plan.fired
        client.close()
        front.stop()
        server.close()

    def test_unkeyed_post_does_not_replay_through_a_reset(self, tmp_path):
        plan = FaultPlan([FaultRule("http.pre_write", "reset", at=2)])
        server = TagDMServer(
            tmp_path / "root", enumeration=ENUMERATION, seed=SEED, fault_plan=plan
        )
        shard = server.add_corpus("movies", make_dataset())
        spec = make_spec(shard)
        front = TagDMHttpServer(server, fault_plan=plan).start()
        pool = HttpConnectionPool(front.url, request_timeout=30.0)
        pool.request("GET", "/corpora")  # arrival 1 warms the keep-alive
        with pytest.raises((http.client.HTTPException, OSError)):
            pool.request(
                "POST", "/corpora/movies/solve",
                body=json.dumps(spec.to_dict()).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )  # ambiguous failure, no key, no GET: must surface
        pool.close()
        front.stop()
        server.close()

    def test_truncated_response_is_detected_not_swallowed(self, tmp_path):
        plan = FaultPlan([FaultRule("http.post_write", "truncate", at=2)])
        server = TagDMServer(
            tmp_path / "root", enumeration=ENUMERATION, seed=SEED, fault_plan=plan
        )
        server.add_corpus("movies", make_dataset())
        front = TagDMHttpServer(server, fault_plan=plan).start()
        pool = HttpConnectionPool(front.url, request_timeout=30.0)
        pool.request("GET", "/corpora")  # arrival 1
        with pytest.raises(http.client.IncompleteRead):
            pool.request("GET", "/corpora/movies/stats")  # arrival 2: cut short
        pool.close()
        front.stop()
        server.close()

    def test_client_side_stale_socket_replay_is_deterministic(self, tmp_path):
        # pool.pre_send "reset" shoots the idle keep-alive socket just
        # before reuse: the send fails before any byte reached the
        # server, so even an unkeyed request replays safely.
        plan = FaultPlan([FaultRule("pool.pre_send", "reset", at=1)])
        server = TagDMServer(tmp_path / "root", enumeration=ENUMERATION, seed=SEED)
        server.add_corpus("movies", make_dataset())
        front = TagDMHttpServer(server).start()
        pool = HttpConnectionPool(front.url, request_timeout=30.0, fault_plan=plan)
        status, _headers, _data = pool.request("GET", "/corpora")  # fresh socket
        assert status == 200
        status, _headers, data = pool.request("GET", "/corpora")  # reused: reset+replay
        assert status == 200
        assert json.loads(data.decode("utf-8")) == {"corpora": ["movies"]}
        assert plan.fired == [("pool.pre_send", "reset", 1)]
        pool.close()
        front.stop()
        server.close()


# ----------------------------------------------------------------------
# Snapshot rotation under crashes
# ----------------------------------------------------------------------
class TestSnapshotCrashSafety:
    def test_crashed_rotation_is_recorded_and_retried(self, tmp_path):
        from repro.serving import SnapshotRotationPolicy

        plan = FaultPlan([FaultRule("snapshot.write", "crash", at=2)])
        server = TagDMServer(
            tmp_path / "root",
            policy=SnapshotRotationPolicy(every_inserts=1),
            enumeration=ENUMERATION,
            seed=SEED,
            fault_plan=plan,
        )
        dataset = make_dataset()
        shard = server.add_corpus("movies", dataset)  # arrival 1: initial snapshot
        shard.insert_batch([action_for(dataset, tag="crash-me")])
        shard.flush()
        stats = shard.stats()
        assert stats["last_rotation_error"] is not None
        assert "InjectedFault" in stats["last_rotation_error"]
        assert stats["snapshots_written"] == 1  # the crashed one never landed
        # Serving continues and the next due rotation retries cleanly.
        shard.insert_batch([action_for(dataset, row=1, tag="retry")])
        shard.flush()
        stats = shard.stats()
        assert stats["last_rotation_error"] is None
        assert stats["snapshots_written"] == 2
        server.close()

    def test_stale_staging_files_are_swept_on_construction(self, tmp_path):
        from repro.serving import SnapshotRotator

        directory = tmp_path / "snapshots"
        directory.mkdir()
        orphan = directory / "session-00000007.snapshot.tmp-12345"
        orphan.write_bytes(b"torn half-written snapshot")
        rotator = SnapshotRotator(directory)
        assert not orphan.exists()
        assert rotator.snapshot_paths() == []  # never mistaken for a snapshot

    def test_open_corpus_falls_back_past_a_corrupt_snapshot(self, tmp_path):
        from repro.serving import SnapshotRotationPolicy

        root = tmp_path / "root"
        dataset = make_dataset()
        server = TagDMServer(
            root,
            policy=SnapshotRotationPolicy(every_inserts=1, keep_last=5),
            enumeration=ENUMERATION,
            seed=SEED,
        )
        shard = server.add_corpus("movies", dataset)
        expected_actions = dataset.n_actions + 1  # the session mutates dataset
        shard.insert_batch([action_for(dataset, tag="second-snap")])
        server.close()  # final snapshot: >= 2 snapshot files on disk
        snapshots = sorted((root / "movies" / "snapshots").glob("*.snapshot"))
        assert len(snapshots) >= 2
        snapshots[-1].write_bytes(b"\x00garbage: a torn or corrupt snapshot")

        reopened = TagDMServer(root, enumeration=ENUMERATION, seed=SEED)
        shard = reopened.open_corpus("movies")
        stats = shard.stats()
        # Warm-started from the older loadable snapshot (replaying the
        # store tail it lagged behind), not cold, and nothing was lost.
        assert stats["start_mode"].startswith("warm")
        assert stats["actions"] == expected_actions
        reopened.close()


# ----------------------------------------------------------------------
# Router: breaker + budget + header relay
# ----------------------------------------------------------------------
class TestRouterReliability:
    def test_budget_bounds_attempts_and_breaker_opens(self):
        placement = PlacementTable(workers=["w0"])
        placement.register_corpus("movies")
        router = TagDMRouter(
            placement,
            lambda worker_id: "http://127.0.0.1:9",  # discard port: refused
            retry_deadline=30.0,
            retry_interval=0.01,
            retry_budget=RetryBudget(
                max_attempts=3, backoff_base=0.01, backoff_cap=0.02, jitter=0.0
            ),
            breaker_failure_threshold=3,
            breaker_reset_timeout=60.0,
        )
        started = time.monotonic()
        with pytest.raises(WorkerUnavailableError) as excinfo:
            router.forward("GET", "movies", "/corpora/movies/stats", b"")
        assert time.monotonic() - started < 5.0  # budget, not the 30s deadline
        assert excinfo.value.details["attempts"] == 3
        stats = router.stats()
        assert stats["budget_exhausted"] == 1
        assert stats["workers_unavailable"] == 1
        assert stats["breakers"]["w0"]["state"] == "open"
        router.stop()

    def test_unresolved_worker_burns_deadline_not_budget(self):
        placement = PlacementTable(workers=["ghost"])
        placement.register_corpus("movies")
        router = TagDMRouter(
            placement,
            lambda worker_id: None,  # supervised restart: nothing to dial
            retry_deadline=0.2,
            retry_interval=0.02,
        )
        with pytest.raises(WorkerUnavailableError) as excinfo:
            router.forward("GET", "movies", "/corpora/movies/stats", b"")
        assert excinfo.value.details["attempts"] == 0  # no budget consumed
        stats = router.stats()
        assert stats["workers_unavailable"] == 1
        assert stats["budget_exhausted"] == 0
        assert stats["breakers"]["ghost"]["state"] == "closed"  # never blamed
        router.stop()

    @pytest.fixture()
    def routed_stack(self, tmp_path):
        """One worker front-end behind a router, admission armed."""
        plan = FaultPlan([FaultRule("shard.solve", "sleep", at=1, sleep_seconds=1.5)])
        server = TagDMServer(
            tmp_path / "root",
            enumeration=ENUMERATION,
            seed=SEED,
            admission=AdmissionPolicy(max_inflight_solves=1, retry_after_seconds=2.0),
            fault_plan=plan,
        )
        dataset = make_dataset()
        shard = server.add_corpus("movies", dataset)
        front = TagDMHttpServer(server, fault_plan=plan).start()
        placement = PlacementTable(workers=["w0"])
        placement.pin("movies", "w0")
        router = TagDMRouter(
            placement, {"w0": front.url}, retry_deadline=10.0, retry_interval=0.02
        ).start()
        yield router, front, server, shard, dataset
        router.stop()
        front.stop()
        server.close()

    def test_router_relays_retry_after_and_429(self, routed_stack):
        router, _front, _server, shard, _dataset = routed_stack
        spec = make_spec(shard)
        body = json.dumps(spec.to_dict()).encode("utf-8")

        def background_solve():
            pool_bg = HttpConnectionPool(router.url, request_timeout=30.0)
            try:
                pool_bg.request(
                    "POST", "/corpora/movies/solve", body=body,
                    headers={"Content-Type": "application/json"},
                )
            finally:
                pool_bg.close()

        solver = threading.Thread(target=background_solve)
        solver.start()
        time.sleep(0.3)
        pool = HttpConnectionPool(router.url, request_timeout=30.0)
        status, headers, data = pool.request(
            "POST", "/corpora/movies/solve", body=body,
            headers={"Content-Type": "application/json"},
        )
        solver.join(timeout=30.0)
        assert status == 429  # the worker's shed relays bit-identically
        assert headers.get("retry-after") == "2"  # header relayed through
        assert isinstance(
            api_error_from_payload(json.loads(data.decode("utf-8"))), OverloadedError
        )
        pool.close()

    def test_router_forwards_the_idempotency_key(self, routed_stack):
        router, _front, _server, shard, dataset = routed_stack
        client = HttpClient(router.url, request_timeout=30.0)
        before = client.stats("movies")["actions"]
        first = client.insert(
            "movies", [action_for(dataset, tag="routed")], idempotency_key="via-router"
        )
        again = client.insert(
            "movies", [action_for(dataset, tag="routed")], idempotency_key="via-router"
        )
        assert first.actions_added == 1 and not first.deduplicated
        assert again.deduplicated  # the key crossed the router both times
        assert client.stats("movies")["actions"] == before + 1
        assert shard.stats()["dedup_hits"] == 1
        client.close()

    def test_health_and_stats_surface_breakers(self, routed_stack):
        router, _front, _server, _shard, _dataset = routed_stack
        pool = HttpConnectionPool(router.url, request_timeout=30.0)
        status, _headers, data = pool.request("GET", "/healthz")
        payload = json.loads(data.decode("utf-8"))
        assert status == 200
        assert payload["workers"]["w0"]["reachable"]
        assert payload["workers"]["w0"]["breaker"]["state"] == "closed"
        assert router.stats()["breakers"]["w0"]["state"] == "closed"
        assert router.stats()["heartbeat_probes"] >= 1
        pool.close()

    def test_heartbeat_probes_close_a_tripped_breaker(self, tmp_path):
        server = TagDMServer(tmp_path / "root", enumeration=ENUMERATION, seed=SEED)
        server.add_corpus("movies", make_dataset())
        front = TagDMHttpServer(server).start()
        placement = PlacementTable(workers=["w0"])
        placement.pin("movies", "w0")
        router = TagDMRouter(
            placement,
            {"w0": front.url},
            breaker_reset_timeout=0.1,
            heartbeat_interval=0.1,
        ).start()
        breaker = router.breaker_for("w0")
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and breaker.state != "closed":
            time.sleep(0.05)
        assert breaker.state == "closed"  # heartbeat probed it back in
        assert router.stats()["heartbeat_probes"] >= 1
        router.stop()
        front.stop()
        server.close()
