"""The multi-process fleet: spawn, parity, kill/respawn recovery.

These tests spawn real worker processes (``multiprocessing`` spawn
context, the fleet default), so they are the slowest in the serving
suite; the fixture is module-scoped and sized small.  Router logic that
does not need real processes lives in ``test_router.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import FleetClient, HttpClient, LocalClient, ProblemSpec
from repro.core.enumeration import GroupEnumerationConfig
from repro.core.framework import TagDM
from repro.core.problem import table1_problem
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import TagDMFleet

SEED = 7
ENUMERATION = GroupEnumerationConfig(min_support=5, max_groups=60)


@pytest.fixture(scope="module")
def fleet_stack(tmp_path_factory):
    """A live 2-worker fleet serving two corpora."""
    root = tmp_path_factory.mktemp("fleet-root")
    datasets = {
        "alpha": generate_movielens_style(n_users=60, n_items=120, n_actions=600, seed=SEED),
        "beta": generate_movielens_style(n_users=40, n_items=80, n_actions=500, seed=SEED + 1),
    }
    fleet = TagDMFleet(
        root,
        n_workers=2,
        enumeration=ENUMERATION,
        seed=SEED,
        pins={"alpha": "worker-0", "beta": "worker-1"},
        spawn_timeout=300.0,
    )
    for name, dataset in datasets.items():
        fleet.add_corpus(name, dataset)
    fleet.start()
    # One warm in-process session for parity baselines.
    session = TagDM(datasets["alpha"], enumeration=ENUMERATION, seed=SEED).prepare()
    problem = table1_problem(1, k=4, min_support=session.default_support())
    spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")
    yield fleet, datasets, session, spec
    fleet.close()


def groups_key(result):
    return [(str(group.description), group.tuple_indices) for group in result.groups]


class TestFleetServing:
    def test_workers_spread_by_pins(self, fleet_stack):
        fleet, _datasets, _session, _spec = fleet_stack
        assert fleet.placement.assignments() == {
            "worker-0": ["alpha"],
            "worker-1": ["beta"],
        }
        stats = fleet.stats()
        assert all(entry["alive"] for entry in stats["workers"].values())

    def test_routed_direct_and_single_process_parity(self, fleet_stack):
        fleet, _datasets, session, spec = fleet_stack
        in_process = LocalClient({"alpha": session}).solve("alpha", spec)
        assert len(in_process.groups) == 4

        routed = HttpClient(fleet.url, request_timeout=120.0)
        via_router = routed.solve("alpha", spec)

        direct = FleetClient(fleet.url, request_timeout=120.0)
        via_worker = direct.solve("alpha", spec)
        # the direct client really did bypass the router for the solve
        assert direct.refresh_placement()["alpha"] == fleet.worker_url(
            fleet.placement.owner_of("alpha")
        )

        for result in (via_router, via_worker):
            assert groups_key(result) == groups_key(in_process)
            assert result.objective_value == in_process.objective_value
        routed.close()
        direct.close()

    def test_both_corpora_answer(self, fleet_stack):
        fleet, datasets, _session, _spec = fleet_stack
        client = HttpClient(fleet.url, request_timeout=120.0)
        assert client.corpora() == ["alpha", "beta"]
        for name, dataset in datasets.items():
            stats = client.stats(name)
            assert stats["actions"] >= dataset.n_actions
            assert stats["start_mode"].startswith("warm")  # snapshot restore
        client.close()

    def test_insert_via_router_lands_durably(self, fleet_stack):
        fleet, datasets, _session, _spec = fleet_stack
        client = HttpClient(fleet.url, request_timeout=120.0)
        dataset = datasets["beta"]
        before = client.stats("beta")["actions"]
        report = client.insert_action(
            "beta", dataset.user_of(0), dataset.item_of(0), ["fleet-tag"]
        )
        assert report.actions_added == 1
        assert client.stats("beta")["actions"] == before + 1
        client.close()


class TestFleetRecovery:
    def test_worker_killed_mid_solve_is_retried_on_respawn(self, fleet_stack):
        fleet, _datasets, session, spec = fleet_stack
        baseline = LocalClient({"alpha": session}).solve("alpha", spec)
        owner = fleet.placement.owner_of("alpha")
        restarts_before = fleet.stats()["workers"][owner]["restarts"]
        client = HttpClient(fleet.url, request_timeout=300.0)

        outcome = {}

        def solve_through_the_kill():
            outcome["result"] = client.solve("alpha", spec)

        solver = threading.Thread(target=solve_through_the_kill)
        solver.start()
        time.sleep(0.05)  # let the request reach the worker
        fleet.kill_worker(owner)
        solver.join(timeout=300.0)
        assert not solver.is_alive(), "routed solve never returned after the kill"

        # The retried solve came from the respawned, warm-started worker
        # and is bit-identical to the in-process baseline.
        assert groups_key(outcome["result"]) == groups_key(baseline)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            stats = fleet.stats()["workers"][owner]
            if stats["alive"] and stats["restarts"] > restarts_before:
                break
            time.sleep(0.05)
        stats = fleet.stats()["workers"][owner]
        assert stats["alive"] and stats["restarts"] > restarts_before
        assert client.stats("alpha")["start_mode"].startswith("warm")
        client.close()

    def test_solve_after_recovery_still_parity(self, fleet_stack):
        fleet, _datasets, session, spec = fleet_stack
        baseline = LocalClient({"alpha": session}).solve("alpha", spec)
        client = HttpClient(fleet.url, request_timeout=120.0)
        assert groups_key(client.solve("alpha", spec)) == groups_key(baseline)
        client.close()
