"""Tests for the delta+main (HTAP) serving split.

Covers the fair merge lock (bounded reader wait under writer
saturation), consistent stats snapshots, epoch pinning, snapshot
visibility semantics -- an insert acknowledged via the delta appears in
the next merged view exactly once, including across merge crashes
injected at the ``merge.pre_fold`` / ``merge.post_fold`` fault points --
and delta-vs-merged solve parity against a serialized replay.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.incremental import IncrementalTagDM, SessionView
from repro.core.problem import table1_problem
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    MergePolicy,
    SnapshotRotationPolicy,
    TagDMServer,
)
from repro.serving.shards import ReadWriteLock

ENUMERATION = GroupEnumerationConfig(min_support=5)
SEED = 17


def make_dataset():
    return generate_movielens_style(n_users=40, n_items=80, n_actions=600, seed=SEED)


def make_server(root, **kwargs) -> TagDMServer:
    policy = SnapshotRotationPolicy(every_inserts=50, keep_last=2)
    return TagDMServer(
        root,
        policy=policy,
        enumeration=ENUMERATION,
        signature_backend="frequency",
        seed=3,
        **kwargs,
    )


def actions_for(dataset, label: str, count: int):
    """Deterministic insert payloads over existing users/items."""
    return [
        {
            "user_id": dataset.user_of((i * 7) % dataset.n_actions),
            "item_id": dataset.item_of((i * 11) % dataset.n_actions),
            "tags": (f"tag-{label}-{i}", "served"),
            "rating": float(i % 5),
        }
        for i in range(count)
    ]


def make_problem(shard):
    return table1_problem(1, k=3, min_support=shard.session.default_support())


def result_key(result):
    """Everything a bit-identical solve comparison needs."""
    return (
        result.feasible,
        result.objective_value,
        tuple(group.description for group in result.groups),
        tuple(group.tuple_indices for group in result.groups),
    )


def rows_tagged(dataset, tag: str):
    """Dataset row indices whose tag tuple contains ``tag``."""
    return [
        row for row in range(dataset.n_actions) if tag in dataset.tags_of(row)
    ]


class TestReadWriteLockFairness:
    def test_reader_wait_bounded_under_writer_saturation(self):
        """Two writer threads re-acquiring in a tight loop must not starve
        a reader: with the old writer-preferring lock some writer was
        always waiting so the reader never entered; the fair lock admits
        it once the writers that arrived before it are done."""
        lock = ReadWriteLock()
        stop = threading.Event()
        acquired = threading.Event()

        def writer():
            while not stop.is_set():
                with lock.write_locked():
                    time.sleep(0.002)

        writers = [threading.Thread(target=writer, daemon=True) for _ in range(2)]
        for thread in writers:
            thread.start()
        time.sleep(0.1)  # let the writer stream saturate

        def reader():
            with lock.read_locked():
                acquired.set()

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            assert acquired.wait(timeout=5.0), "reader starved by writer stream"
        finally:
            stop.set()
            for t in writers:
                t.join()
            thread.join()

    def test_writers_remain_mutually_exclusive(self):
        """Fairness must not cost correctness: read-modify-write under the
        write lock stays atomic across competing writers."""
        lock = ReadWriteLock()
        counter = {"value": 0}

        def bump():
            for _ in range(200):
                with lock.write_locked():
                    current = counter["value"]
                    counter["value"] = current + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 800

    def test_readers_share_the_lock(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5.0)

        def reader():
            with lock.read_locked():
                inside.wait()  # requires all three readers inside at once

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_reader_arriving_after_waiting_writer_lets_it_go_first(self):
        """Arrival order is respected: a reader that shows up while a
        writer is already waiting does not overtake it."""
        lock = ReadWriteLock()
        order = []
        release_first_reader = threading.Event()

        def first_reader():
            with lock.read_locked():
                release_first_reader.wait(timeout=5.0)

        def writer():
            with lock.write_locked():
                order.append("writer")

        def second_reader():
            with lock.read_locked():
                order.append("reader")

        r1 = threading.Thread(target=first_reader)
        r1.start()
        time.sleep(0.05)
        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # the writer is now waiting behind r1
        r2 = threading.Thread(target=second_reader)
        r2.start()
        time.sleep(0.05)
        release_first_reader.set()
        for thread in (r1, w, r2):
            thread.join(timeout=5.0)
        assert order == ["writer", "reader"]


class TestSnapshotVisibility:
    """An insert acked via the delta appears in the next merged view
    exactly once -- with lazy merges, across merge_now, and across merge
    crashes injected at the merge fault points."""

    def test_lazy_policy_ack_lands_in_delta_then_merges_once(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path, merge_policy=MergePolicy(every_inserts=None))
        shard = server.add_corpus("movies", dataset)
        base_epoch = shard.stats()["epoch"]
        base_actions = shard.current_view().n_actions

        shard.insert_batch(actions_for(dataset, "lazy", 3))
        stats = shard.stats()
        assert stats["delta_size"] == 3  # acked and applied, not yet visible
        assert stats["epoch"] == base_epoch
        assert stats["merge_count"] == 0
        assert stats["merge_lag_s"] >= 0.0
        assert shard.current_view().n_actions == base_actions

        epoch = shard.merge_now()
        stats = shard.stats()
        assert epoch == base_epoch + 1
        assert stats["delta_size"] == 0
        assert stats["merge_count"] == 1
        assert stats["merge_lag_s"] == 0.0
        assert shard.current_view().n_actions == base_actions + 3
        # Exactly once: each inserted action occupies exactly one row.
        assert len(rows_tagged(shard.session.dataset, "tag-lazy-0")) == 1
        assert shard.session.consistency_errors() == []
        server.close()

    def test_default_policy_folds_before_ack(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", dataset)
        base_epoch = shard.stats()["epoch"]
        shard.insert_batch(actions_for(dataset, "sync", 2))
        stats = shard.stats()  # no flush: the ack itself implies the fold
        assert stats["delta_size"] == 0
        assert stats["epoch"] > base_epoch
        server.close()

    @pytest.mark.parametrize("point", ["merge.pre_fold", "merge.post_fold"])
    def test_insert_survives_merge_crash_exactly_once(self, tmp_path, point):
        dataset = make_dataset()
        plan = FaultPlan([FaultRule(point, "crash", at=1)])
        server = make_server(
            tmp_path,
            merge_policy=MergePolicy(every_inserts=None),
            fault_plan=plan,
        )
        shard = server.add_corpus("movies", dataset)
        base_actions = shard.current_view().n_actions

        shard.insert_batch(actions_for(dataset, "crash", 4))
        with pytest.raises(InjectedFault):
            shard.merge_now()
        stats = shard.stats()
        assert stats["merge_failures"] == 1
        assert stats["last_merge_error"] is not None
        if point == "merge.pre_fold":
            # Crash before the fold: nothing published, delta intact.
            assert stats["merge_count"] == 0
            assert stats["delta_size"] == 4
            assert shard.current_view().n_actions == base_actions
        else:
            # Crash after publication: the fold itself completed.
            assert stats["merge_count"] == 1
            assert stats["delta_size"] == 0
            assert shard.current_view().n_actions == base_actions + 4

        # The rule is spent; the next merge folds whatever is still
        # unmerged -- and the batch lands exactly once either way.
        shard.merge_now()
        stats = shard.stats()
        assert stats["delta_size"] == 0
        assert shard.current_view().n_actions == base_actions + 4
        if point == "merge.pre_fold":
            assert stats["merge_count"] == 1
            assert stats["last_merge_error"] is None  # cleared by the fold
        assert len(rows_tagged(shard.session.dataset, "tag-crash-2")) == 1
        assert shard.session.consistency_errors() == []
        assert [entry[0] for entry in plan.fired] == [point]
        server.close()

    def test_crashed_writer_fold_recovers_on_next_batch(self, tmp_path):
        """Under the default fold-per-batch policy a crashed fold must not
        fail the insert (it is durably applied) -- the next batch's fold
        publishes both batches."""
        dataset = make_dataset()
        plan = FaultPlan([FaultRule("merge.pre_fold", "crash", at=1)])
        server = make_server(tmp_path, fault_plan=plan)
        shard = server.add_corpus("movies", dataset)
        base_actions = shard.current_view().n_actions

        report = shard.insert_batch(actions_for(dataset, "recover", 2))
        assert report.actions_added == 2  # acked despite the crashed fold
        assert shard.stats()["delta_size"] == 2
        shard.insert_batch(actions_for(dataset, "recover2", 1))
        stats = shard.stats()
        assert stats["delta_size"] == 0
        assert stats["merge_failures"] == 1
        assert stats["last_merge_error"] is None  # cleared by the good fold
        assert shard.current_view().n_actions == base_actions + 3
        server.close()


class TestEpochPinning:
    def test_long_solve_keeps_its_epoch_pinned_across_merges(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", dataset)
        problem = make_problem(shard)

        in_solve = threading.Event()
        release = threading.Event()
        original_solve = SessionView.solve

        def slow_solve(view, *args, **kwargs):
            in_solve.set()
            release.wait(timeout=10.0)
            return original_solve(view, *args, **kwargs)

        solver_result = {}

        def solver():
            solver_result["result"] = shard.solve(problem)

        thread = threading.Thread(target=solver, daemon=True)
        try:
            SessionView.solve = slow_solve
            thread.start()
            assert in_solve.wait(timeout=10.0)
            SessionView.solve = original_solve
            start_epoch = shard.stats()["epoch"]
            shard.insert_batch(actions_for(dataset, "pin", 2))
            stats = shard.stats()
            assert stats["epoch"] > start_epoch  # merges kept advancing
            assert stats["pinned_epochs"] == {str(start_epoch): 1}
            assert stats["pinned_solves"] == 1
        finally:
            SessionView.solve = original_solve
            release.set()
            thread.join(timeout=30.0)
        assert solver_result["result"] is not None
        stats = shard.stats()
        assert stats["pinned_epochs"] == {}
        assert stats["pinned_solves"] == 0
        server.close()

    def test_solve_does_not_wait_for_a_busy_writer(self, tmp_path):
        """A solve issued while the writer is mid-apply must complete
        against the current view instead of stalling behind the write --
        the pre-HTAP shard held the read lock for the whole solve, so
        this exact schedule used to serialize."""
        dataset = make_dataset()
        plan = FaultPlan(
            [FaultRule("shard.apply", "sleep", at=1, sleep_seconds=1.5)]
        )
        server = make_server(tmp_path, fault_plan=plan)
        shard = server.add_corpus("movies", dataset)
        problem = make_problem(shard)
        shard.solve(problem)  # warm the view's lazy caches

        future = shard.submit_insert(actions_for(dataset, "busy", 2))
        time.sleep(0.1)  # the writer is now asleep inside the apply
        started = time.monotonic()
        shard.solve(problem)
        solve_seconds = time.monotonic() - started
        future.result(timeout=30.0)
        assert solve_seconds < 1.0, (
            f"solve took {solve_seconds:.2f}s -- it stalled behind the writer"
        )
        server.close()


class TestStatsConsistency:
    def test_stats_never_torn_under_concurrent_merges(self, tmp_path):
        """Hammer stats() while inserts/merges run; every snapshot must be
        internally consistent (the satellite bug: counters were read
        without synchronisation, so /healthz could observe a bumped
        merge_count alongside the previous epoch)."""
        dataset = make_dataset()
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", dataset)
        errors = []
        stop = threading.Event()

        def poller():
            try:
                while not stop.is_set():
                    stats = shard.stats()
                    assert stats["delta_size"] >= 0
                    assert stats["merge_lag_s"] >= 0.0
                    assert stats["pinned_solves"] == sum(
                        stats["pinned_epochs"].values()
                    )
                    # Epoch 1 is the construction freeze and every
                    # successful fold publishes exactly one epoch, so with
                    # no merge failures the pair can never disagree.
                    assert stats["epoch"] == stats["merge_count"] + 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pollers = [threading.Thread(target=poller, daemon=True) for _ in range(4)]
        for thread in pollers:
            thread.start()
        for action in actions_for(dataset, "stats", 40):
            shard.insert(**action)
        stop.set()
        for thread in pollers:
            thread.join(timeout=10.0)
        assert errors == []
        stats = shard.stats()
        assert stats["inserts_served"] == 40
        assert stats["merge_count"] >= 1
        server.close()


class TestDeltaMergeParity:
    def test_shard_solves_match_serialized_replay(self, tmp_path):
        """After any prefix of inserts, a shard solve must be bit-identical
        to a fresh session replaying the same prefix serially."""
        dataset = make_dataset()
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", dataset)
        problem = make_problem(shard)
        inserts = actions_for(dataset, "parity", 30)

        applied = 0
        for cut in (10, 30):
            for action in inserts[applied:cut]:
                shard.insert(**action)
            applied = cut
            shard.flush()
            replay = IncrementalTagDM(
                make_dataset(),
                enumeration=ENUMERATION,
                signature_backend="frequency",
                seed=3,
            ).prepare()
            replay.add_actions(inserts[:cut])
            assert result_key(shard.solve(problem)) == result_key(
                replay.solve(problem)
            )
        server.close()

    def test_frozen_view_is_immutable_under_later_inserts(self):
        dataset = make_dataset()
        session = IncrementalTagDM(
            dataset, enumeration=ENUMERATION, signature_backend="frequency", seed=3
        ).prepare()
        problem = table1_problem(1, k=3, min_support=session.default_support())
        view = session.freeze(epoch=7)
        assert view.epoch == 7
        assert view.n_groups == session.n_groups
        frozen_key = result_key(view.solve(problem))
        assert frozen_key == result_key(session.solve(problem))

        session.add_actions(actions_for(dataset, "frozen", 5))
        # The view stays pinned to its freeze-time state: same action
        # count, bit-identical solve, while the live session moved on.
        assert session.dataset.n_actions == 605
        assert view.n_actions == 600
        assert result_key(view.solve(problem)) == frozen_key
