"""The HTTP front-end: endpoints, error taxonomy, wire parity."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.api import (
    CapabilityMismatchError,
    HttpClient,
    LocalClient,
    ProblemSpec,
    SolveTimeoutError,
    SpecValidationError,
    UnknownCorpusError,
    UnknownRouteError,
)
from repro.core.enumeration import GroupEnumerationConfig
from repro.core.problem import table1_problem
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import TagDMHttpServer, TagDMServer
from repro.serving.shards import CorpusShard

SEED = 23


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """One server + HTTP front-end + client shared by the module."""
    root = tmp_path_factory.mktemp("http-root")
    dataset = generate_movielens_style(n_users=40, n_items=80, n_actions=600, seed=SEED)
    # max_groups keeps the "exact" parity solve inside its candidate cap
    server = TagDMServer(
        root,
        enumeration=GroupEnumerationConfig(min_support=5, max_groups=60),
        seed=SEED,
    )
    server.add_corpus("movies", dataset)
    front = TagDMHttpServer(server).start()
    client = HttpClient(front.url, request_timeout=30.0)
    yield server, front, client
    front.stop()
    server.close()


def raw_request(front, method, path, body=None):
    """Issue a raw request and return ``(status, decoded json)``."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(front.url + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestEndpoints:
    def test_healthz(self, stack):
        _server, front, client = stack
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["corpora"] == ["movies"]
        assert payload["cold_starts"] == 1
        assert payload["warm_starts"] == 0
        assert payload["snapshots_written"] >= 1

    def test_corpora(self, stack):
        _server, _front, client = stack
        assert client.corpora() == ["movies"]

    def test_stats_surfaces_rotation_counters(self, stack):
        _server, _front, client = stack
        stats = client.stats("movies")
        assert stats["name"] == "movies"
        assert stats["start_mode"] == "cold"
        assert stats["snapshots_written"] >= 1
        assert stats["last_rotation_at"] is not None
        assert "replayed_actions" in stats

    def test_insert_then_solve_over_the_wire(self, stack):
        server, _front, client = stack
        dataset = server.shard("movies").session.dataset
        before = dataset.n_actions
        report = client.insert_action(
            "movies", dataset.user_of(0), dataset.item_of(0), ["http-tag"]
        )
        assert report.actions_added == 1
        assert server.shard("movies").session.dataset.n_actions == before + 1
        problem = table1_problem(
            1, k=3, min_support=server.shard("movies").session.default_support()
        )
        result = client.solve("movies", problem, algorithm="sm-lsh-fo")
        assert result.k == 3
        assert result.algorithm == "sm-lsh-fo"


class TestWireParity:
    def test_http_solve_is_bit_identical_to_in_process(self, stack):
        """The acceptance criterion: same warm session, same groups."""
        server, _front, client = stack
        shard = server.shard("movies")
        local = LocalClient({"movies": shard.session})
        problem = table1_problem(1, k=3, min_support=shard.session.default_support())
        for algorithm in ("sm-lsh-fo", "exact"):
            spec = ProblemSpec.from_problem(problem, algorithm=algorithm)
            over_http = client.solve("movies", spec)
            in_process = local.solve("movies", spec)
            assert over_http.objective_value == in_process.objective_value
            assert [g.description for g in over_http.groups] == [
                g.description for g in in_process.groups
            ]
            assert [g.tuple_indices for g in over_http.groups] == [
                g.tuple_indices for g in in_process.groups
            ]
            assert over_http.constraint_scores == in_process.constraint_scores


class TestErrorTaxonomy:
    def test_bad_spec_is_422(self, stack):
        _server, front, _client = stack
        status, payload = raw_request(
            front,
            "POST",
            "/corpora/movies/solve",
            body={"problem": {"objectives": []}},
        )
        assert status == 422
        assert payload["error"]["code"] == "validation"

    def test_unknown_corpus_is_404(self, stack):
        _server, front, _client = stack
        status, payload = raw_request(
            front,
            "POST",
            "/corpora/atlantis/solve",
            body=ProblemSpec.from_problem(table1_problem(1)).to_dict(),
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown-corpus"
        assert payload["error"]["details"]["known"] == ["movies"]

    def test_capability_mismatch_is_409(self, stack):
        _server, front, _client = stack
        status, payload = raw_request(
            front,
            "POST",
            "/corpora/movies/solve",
            body=ProblemSpec.from_problem(
                table1_problem(4), algorithm="sm-lsh-fo"
            ).to_dict(),
        )
        assert status == 409
        assert payload["error"]["code"] == "capability-mismatch"

    def test_unknown_route_is_404(self, stack):
        _server, front, _client = stack
        status, payload = raw_request(front, "GET", "/corpora/movies/nope")
        assert status == 404
        assert payload["error"]["code"] == "unknown-route"

    def test_non_json_body_is_422(self, stack):
        _server, front, _client = stack
        request = urllib.request.Request(
            front.url + "/corpora/movies/solve", data=b"not json{", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 422

    def test_typed_errors_rebuild_client_side(self, stack):
        _server, _front, client = stack
        with pytest.raises(UnknownCorpusError):
            client.stats("atlantis")
        with pytest.raises(CapabilityMismatchError):
            client.solve("movies", table1_problem(4), algorithm="sm-lsh-fo")
        with pytest.raises(SpecValidationError):
            client.solve("movies", {"problem": {"objectives": []}})
        with pytest.raises(UnknownRouteError):
            client._request("GET", "/nope")

    def test_error_with_unread_body_keeps_the_keepalive_connection_usable(
        self, stack
    ):
        """An error answered before the body was read must not desync a
        persistent connection (the unread bytes would otherwise be parsed
        as the next request line)."""
        import http.client

        _server, front, _client = stack
        host, port = front.address
        connection = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            body = json.dumps({"padding": "x" * 4096}).encode("utf-8")
            # unknown route: the handler raises before touching the body
            connection.request("POST", "/corpora/movies/explode", body=body)
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            # the same connection must serve the next request cleanly
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_solve_timeout_is_504(self, stack, monkeypatch):
        server, _front, client = stack
        import time

        original = CorpusShard.solve

        def slow_solve(self, *args, **kwargs):
            time.sleep(0.5)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(CorpusShard, "solve", slow_solve)
        problem = table1_problem(
            1, k=3, min_support=server.shard("movies").session.default_support()
        )
        with pytest.raises(SolveTimeoutError):
            client.solve("movies", problem, algorithm="sm-lsh-fo", timeout=0.05)


class TestLifecycle:
    def test_stop_is_idempotent_and_releases_the_port(self, tmp_path):
        dataset = generate_movielens_style(
            n_users=20, n_items=40, n_actions=200, seed=SEED
        )
        with TagDMServer(tmp_path, seed=SEED) as server:
            server.add_corpus("tiny", dataset)
            front = TagDMHttpServer(server)
            assert not front.is_running
            front.start()
            assert front.is_running
            host, port = front.address
            assert port != 0
            front.stop()
            front.stop()
            assert not front.is_running
            # the TagDMServer must keep serving in-process after the
            # front-end is gone
            assert server.corpus_names == ["tiny"]
