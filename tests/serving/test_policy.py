"""Tests for snapshot rotation: policy triggers, pruning, crash safety."""

from __future__ import annotations

import time

import pytest

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.framework import TagDM
from repro.core.persistence import load_session
from repro.dataset.synthetic import generate_movielens_style
from repro.serving.policy import SnapshotRotationPolicy, SnapshotRotator


@pytest.fixture(scope="module")
def corpus():
    return generate_movielens_style(n_users=30, n_items=60, n_actions=400, seed=13)


@pytest.fixture(scope="module")
def session(corpus):
    return TagDM(
        corpus,
        enumeration=GroupEnumerationConfig(min_support=5, max_groups=40),
        signature_backend="frequency",
        seed=2,
    ).prepare()


class TestPolicy:
    def test_insert_trigger(self):
        policy = SnapshotRotationPolicy(every_inserts=10, every_seconds=None)
        assert not policy.due(9, 1e9)  # time trigger disabled
        assert policy.due(10, 0.0)

    def test_time_trigger_needs_at_least_one_insert(self):
        policy = SnapshotRotationPolicy(every_inserts=None, every_seconds=0.5)
        assert not policy.due(0, 1e9)  # idle shard: last snapshot is current
        assert not policy.due(1, 0.1)
        assert policy.due(1, 0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            SnapshotRotationPolicy(every_inserts=0)
        with pytest.raises(ValueError):
            SnapshotRotationPolicy(every_seconds=0.0)
        with pytest.raises(ValueError):
            SnapshotRotationPolicy(keep_last=0)
        with pytest.raises(ValueError):
            SnapshotRotationPolicy(every_inserts=None, every_seconds=None)


class TestRotator:
    def test_sequence_numbers_are_monotonic_and_resume(self, session, tmp_path):
        rotator = SnapshotRotator(tmp_path, policy=SnapshotRotationPolicy(keep_last=10))
        first = rotator.rotate(session)
        second = rotator.rotate(session)
        assert first.name == "session-00000001.snapshot"
        assert second.name == "session-00000002.snapshot"
        # A fresh rotator over the same directory resumes the numbering.
        resumed = SnapshotRotator(tmp_path, policy=SnapshotRotationPolicy(keep_last=10))
        assert resumed.rotate(session).name == "session-00000003.snapshot"

    def test_keep_last_k_pruning(self, session, tmp_path):
        rotator = SnapshotRotator(tmp_path, policy=SnapshotRotationPolicy(keep_last=2))
        for _ in range(5):
            rotator.rotate(session)
        names = [path.name for path in rotator.snapshot_paths()]
        assert names == ["session-00000004.snapshot", "session-00000005.snapshot"]
        assert rotator.latest().name == "session-00000005.snapshot"

    def test_due_resets_after_rotation(self, session, tmp_path):
        rotator = SnapshotRotator(
            tmp_path, policy=SnapshotRotationPolicy(every_inserts=5)
        )
        rotator.record_inserts(5)
        assert rotator.due()
        rotator.rotate(session)
        assert rotator.inserts_since_rotation == 0
        assert not rotator.due()

    def test_time_based_rotation(self, session, tmp_path):
        rotator = SnapshotRotator(
            tmp_path,
            policy=SnapshotRotationPolicy(every_inserts=None, every_seconds=0.05),
        )
        rotator.record_inserts(1)
        assert not rotator.due()
        time.sleep(0.06)
        assert rotator.due()

    def test_basename_must_be_filesystem_safe(self, tmp_path):
        with pytest.raises(ValueError, match="filesystem-safe"):
            SnapshotRotator(tmp_path, basename="../escape")


class TestCrashSafety:
    def test_torn_write_leaves_previous_snapshot_loadable(
        self, corpus, session, tmp_path, monkeypatch
    ):
        """A crash mid-rotation (simulated as pickle failing after partial
        output) must leave the previous snapshot as the intact latest."""
        rotator = SnapshotRotator(tmp_path, policy=SnapshotRotationPolicy(keep_last=3))
        good = rotator.rotate(session)
        good_bytes = good.read_bytes()

        def exploding_dump(obj, handle, protocol=None):
            handle.write(b"partial snapshot bytes")
            raise OSError("power loss")

        monkeypatch.setattr("repro.core.persistence.pickle.dump", exploding_dump)
        with pytest.raises(OSError, match="power loss"):
            rotator.rotate(session)
        monkeypatch.undo()

        assert rotator.latest() == good
        assert good.read_bytes() == good_bytes
        assert [p.name for p in rotator.snapshot_paths()] == [good.name]
        warm = load_session(good, corpus)
        assert warm.n_groups == session.n_groups

    def test_warm_reload_ignores_in_flight_staging_files(
        self, corpus, session, tmp_path
    ):
        """A reader that opens the directory mid-rotation sees only complete
        snapshots: the writer's staging file is not part of the inventory."""
        rotator = SnapshotRotator(tmp_path, policy=SnapshotRotationPolicy(keep_last=3))
        complete = rotator.rotate(session)
        # The next rotation is "in flight": its staging file exists but the
        # atomic rename has not happened yet.
        staging = tmp_path / "session-00000002.snapshot.tmp-4242"
        staging.write_bytes(b"half-written pickle")
        assert rotator.latest() == complete
        warm = load_session(rotator.latest(), corpus)
        assert warm.n_groups == session.n_groups

    def test_failed_rotation_keeps_counter_and_inventory(self, session, tmp_path, monkeypatch):
        rotator = SnapshotRotator(tmp_path, policy=SnapshotRotationPolicy(keep_last=3))
        rotator.rotate(session)
        rotator.record_inserts(7)

        monkeypatch.setattr(
            "repro.core.persistence.pickle.dump",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            rotator.rotate(session)
        monkeypatch.undo()

        assert rotator.rotations == 1
        # The unsnapshotted inserts still count toward the next rotation.
        assert rotator.inserts_since_rotation == 7
        assert len(rotator.snapshot_paths()) == 1
