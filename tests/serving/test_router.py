"""The fleet router: placement, forwarding, retry and 404 parity.

Workers here are in-process :class:`TagDMHttpServer` instances (threads,
not child processes) so the forwarding/retry logic is exercised without
spawn latency; the real multi-process paths live in ``test_fleet.py``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import (
    HttpClient,
    ProblemSpec,
    UnknownCorpusError,
    UnknownRouteError,
    WorkerUnavailableError,
    merge_result_pages,
)
from repro.core.enumeration import GroupEnumerationConfig
from repro.core.problem import table1_problem
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import PlacementTable, TagDMHttpServer, TagDMRouter, TagDMServer

SEED = 7


class TestPlacementTable:
    def test_rendezvous_is_deterministic_and_total(self):
        table = PlacementTable(workers=["w0", "w1", "w2"])
        corpora = [f"corpus-{index}" for index in range(20)]
        for name in corpora:
            table.register_corpus(name)
        owners = {name: table.owner_of(name) for name in corpora}
        # Same inputs, same answers -- across a fresh table too.
        again = PlacementTable(workers=["w2", "w0", "w1"])
        for name in corpora:
            again.register_corpus(name)
        assert owners == {name: again.owner_of(name) for name in corpora}
        assert set(table.assignments()) == {"w0", "w1", "w2"}
        assert sorted(
            name for members in table.assignments().values() for name in members
        ) == sorted(corpora)

    def test_removing_a_worker_only_moves_its_corpora(self):
        table = PlacementTable(workers=["w0", "w1", "w2"])
        corpora = [f"corpus-{index}" for index in range(30)]
        for name in corpora:
            table.register_corpus(name)
        before = {name: table.owner_of(name) for name in corpora}
        table.remove_worker("w1")
        for name in corpora:
            after = table.owner_of(name)
            if before[name] != "w1":
                assert after == before[name]  # survivors keep their corpora
            else:
                assert after in ("w0", "w2")

    def test_pins_override_and_fall_back(self):
        table = PlacementTable(workers=["w0", "w1"])
        table.register_corpus("movies")
        hashed = table.owner_of("movies")
        other = "w0" if hashed == "w1" else "w1"
        table.pin("movies", other)
        assert table.owner_of("movies") == other
        table.remove_worker(other)
        assert table.owner_of("movies") == hashed  # absent pin falls back
        with pytest.raises(KeyError):
            table.pin("movies", "w9")

    def test_unknown_corpus_and_empty_table(self):
        table = PlacementTable(workers=["w0"])
        with pytest.raises(KeyError):
            table.owner_of("nope")
        empty = PlacementTable()
        empty.register_corpus("movies")
        with pytest.raises(RuntimeError):
            empty.owner_of("movies")


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """Two in-process 'workers' behind one router (pins align placement)."""
    dataset_a = generate_movielens_style(n_users=60, n_items=120, n_actions=600, seed=SEED)
    dataset_b = generate_movielens_style(n_users=40, n_items=80, n_actions=500, seed=SEED + 1)
    enumeration = GroupEnumerationConfig(min_support=5, max_groups=60)

    server_a = TagDMServer(tmp_path_factory.mktemp("worker-a"), enumeration=enumeration, seed=SEED)
    shard_a = server_a.add_corpus("alpha", dataset_a)
    server_b = TagDMServer(tmp_path_factory.mktemp("worker-b"), enumeration=enumeration, seed=SEED)
    server_b.add_corpus("beta", dataset_b)

    front_a = TagDMHttpServer(server_a).start()
    front_b = TagDMHttpServer(server_b).start()
    urls = {"worker-a": front_a.url, "worker-b": front_b.url}

    placement = PlacementTable(workers=["worker-a", "worker-b"])
    placement.pin("alpha", "worker-a")
    placement.pin("beta", "worker-b")
    router = TagDMRouter(
        placement, urls.get, retry_deadline=10.0, retry_interval=0.02
    ).start()

    problem = table1_problem(1, k=4, min_support=shard_a.session.default_support())
    spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")
    context = {
        "urls": urls,
        "router": router,
        "fronts": {"worker-a": front_a, "worker-b": front_b},
        "servers": {"worker-a": server_a, "worker-b": server_b},
        "spec": spec,
        "dataset_b": dataset_b,
    }
    yield context
    router.stop()
    for front in context["fronts"].values():
        if front.is_running:
            front.stop()
    server_a.close()
    server_b.close()


def groups_key(result):
    return [(str(group.description), group.tuple_indices) for group in result.groups]


def raw_get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=30.0) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestRouting:
    def test_corpora_is_the_placement_union(self, stack):
        client = HttpClient(stack["router"].url)
        assert client.corpora() == ["alpha", "beta"]
        client.close()

    def test_placement_payload(self, stack):
        client = HttpClient(stack["router"].url)
        payload = client.placement()
        assert payload["corpora"] == {"alpha": "worker-a", "beta": "worker-b"}
        assert payload["workers"]["worker-a"] == stack["urls"]["worker-a"]
        assert payload["pins"] == {"alpha": "worker-a", "beta": "worker-b"}
        client.close()

    def test_routed_solve_is_bit_identical_to_direct(self, stack):
        routed = HttpClient(stack["router"].url)
        direct = HttpClient(stack["urls"]["worker-a"])
        via_router = routed.solve("alpha", stack["spec"])
        via_worker = direct.solve("alpha", stack["spec"])
        assert groups_key(via_router) == groups_key(via_worker)
        assert via_router.objective_value == via_worker.objective_value
        assert len(via_router.groups) == 4
        routed.close()
        direct.close()

    def test_insert_routes_to_the_owner(self, stack):
        client = HttpClient(stack["router"].url)
        dataset = stack["dataset_b"]
        before = client.stats("beta")["actions"]
        client.insert_action(
            "beta", dataset.user_of(0), dataset.item_of(0), ["routed-tag"]
        )
        assert client.stats("beta")["actions"] == before + 1
        # the other worker's corpus is untouched
        assert stack["servers"]["worker-a"].shard("alpha").stats()["inserts_served"] == 0
        client.close()

    def test_pagination_and_stream_forward_through_router(self, stack):
        client = HttpClient(stack["router"].url)
        full = client.solve("alpha", stack["spec"])
        pages = list(client.solve_pages("alpha", stack["spec"], page_size=3))
        assert groups_key(merge_result_pages(pages)) == groups_key(full)
        streamed = client.solve_stream("alpha", stack["spec"])
        assert groups_key(streamed) == groups_key(full)
        client.close()

    def test_health_aggregates_workers(self, stack):
        status, payload = raw_get(stack["router"].url, "/healthz")
        assert status == 200
        assert payload["status"] == "ok" and payload["role"] == "router"
        assert set(payload["workers"]) == {"worker-a", "worker-b"}
        assert all(entry["reachable"] for entry in payload["workers"].values())
        assert payload["solves_served"] >= 0

    def test_unknown_corpus_payload_matches_single_process(self, stack):
        # Make the known-corpora lists coincide: ask a single-process
        # front-end that serves only 'alpha' vs a router placing only
        # 'alpha', then compare the 404 bodies byte for byte.
        placement = PlacementTable(workers=["worker-a"])
        placement.pin("alpha", "worker-a")
        lone_router = TagDMRouter(placement, stack["urls"].get).start()
        try:
            router_status, router_payload = raw_get(
                lone_router.url, "/corpora/atlantis/stats"
            )
            worker_status, worker_payload = raw_get(
                stack["urls"]["worker-a"], "/corpora/atlantis/stats"
            )
        finally:
            lone_router.stop()
        assert router_status == worker_status == 404
        assert router_payload == worker_payload

    def test_unknown_route_404(self, stack):
        status, payload = raw_get(stack["router"].url, "/nope")
        assert status == 404
        assert payload["error"]["code"] == "unknown-route"

    def test_typed_errors_relay_unchanged(self, stack):
        client = HttpClient(stack["router"].url)
        with pytest.raises(UnknownCorpusError):
            client.stats("atlantis")
        with pytest.raises(UnknownRouteError):
            client.placement_probe = client._request("GET", "/corpora/alpha/bogus")
        client.close()


class TestRetry:
    def test_request_rides_out_a_worker_restart(self, stack):
        baseline = HttpClient(stack["urls"]["worker-a"]).solve("alpha", stack["spec"])

        # A fresh router (no pooled connections into the old front-end,
        # the way a router sees a worker that died hard) pinned to the
        # same placement.
        placement = PlacementTable(workers=["worker-a"])
        placement.pin("alpha", "worker-a")
        router = TagDMRouter(
            placement,
            lambda worker_id: stack["urls"].get(worker_id),
            retry_deadline=10.0,
            retry_interval=0.02,
        ).start()
        client = HttpClient(router.url, request_timeout=60.0)

        # Take worker-a down; its old address now refuses connections.
        stack["fronts"]["worker-a"].stop()

        def delayed_restart():
            new_front = TagDMHttpServer(stack["servers"]["worker-a"]).start()
            stack["fronts"]["worker-a"] = new_front
            stack["urls"]["worker-a"] = new_front.url  # respawn on a new port

        timer = threading.Timer(0.3, delayed_restart)
        timer.start()
        try:
            result = client.solve("alpha", stack["spec"])
        finally:
            timer.join()
        assert groups_key(result) == groups_key(baseline)
        assert router.stats()["forward_retries"] >= 1
        client.close()
        router.stop()

    def test_worker_down_past_deadline_answers_503(self, stack):
        placement = PlacementTable(workers=["ghost"])
        placement.register_corpus("alpha")
        short_router = TagDMRouter(
            placement,
            lambda worker_id: None,  # never resolves: worker never comes up
            retry_deadline=0.3,
            retry_interval=0.02,
        ).start()
        client = HttpClient(short_router.url)
        try:
            with pytest.raises(WorkerUnavailableError):
                client.stats("alpha")
        finally:
            client.close()
            short_router.stop()
        assert short_router.stats()["workers_unavailable"] == 1
