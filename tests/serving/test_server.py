"""Tests for the long-lived serving loop (TagDMServer / CorpusShard)."""

from __future__ import annotations

import threading

import pytest

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.incremental import IncrementalTagDM
from repro.core.problem import table1_problem
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import SnapshotRotationPolicy, TagDMServer

ENUMERATION = GroupEnumerationConfig(min_support=5)
SEED = 17


def make_dataset():
    return generate_movielens_style(n_users=40, n_items=80, n_actions=600, seed=SEED)


def make_server(root, **policy_kwargs) -> TagDMServer:
    policy = SnapshotRotationPolicy(
        **{"every_inserts": 50, "keep_last": 2, **policy_kwargs}
    )
    return TagDMServer(
        root,
        policy=policy,
        enumeration=ENUMERATION,
        signature_backend="frequency",
        seed=3,
    )


def actions_for(dataset, label: str, count: int):
    """Deterministic insert payloads over existing users/items."""
    return [
        {
            "user_id": dataset.user_of((i * 7) % dataset.n_actions),
            "item_id": dataset.item_of((i * 11) % dataset.n_actions),
            "tags": (f"tag-{label}-{i}", "served"),
            "rating": float(i % 5),
        }
        for i in range(count)
    ]


class TestConcurrentServing:
    def test_interleaved_inserts_and_solves_match_cold_replay(self, tmp_path):
        """The acceptance criterion: a warm shard under interleaved inserts
        and solves from multiple client threads raises nothing, and its
        final solve output is bit-identical to a cold single-threaded
        session over the same final corpus."""
        dataset = make_dataset()
        initial_actions = dataset.n_actions
        server = make_server(tmp_path, every_inserts=25)
        shard = server.add_corpus("movies", dataset)
        problem = table1_problem(
            1, k=3, min_support=shard.session.default_support()
        )
        diversity = table1_problem(
            6, k=3, min_support=shard.session.default_support()
        )

        errors = []
        barrier = threading.Barrier(4)

        def inserter(label: str) -> None:
            try:
                barrier.wait()
                for action in actions_for(dataset, label, 40):
                    server.insert("movies", **action)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def solver() -> None:
            try:
                barrier.wait()
                for _ in range(10):
                    result = server.solve("movies", problem, algorithm="sm-lsh-fo")
                    assert result is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=inserter, args=("a",)),
            threading.Thread(target=inserter, args=("b",)),
            threading.Thread(target=solver),
            threading.Thread(target=solver),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        shard.flush()
        assert shard.session.dataset.n_actions == initial_actions + 80
        assert shard.session.consistency_errors() == []

        # Replay the committed insert order into a cold single-threaded
        # session over a regenerated initial corpus.
        cold = IncrementalTagDM(
            make_dataset(),
            enumeration=ENUMERATION,
            signature_backend="frequency",
            seed=3,
        ).prepare()
        served = shard.session.dataset
        for row in range(initial_actions, served.n_actions):
            cold.add_action(
                served.user_of(row),
                served.item_of(row),
                served.tags_of(row),
                served.rating_of(row),
            )

        for spec, algorithm in (
            (problem, "sm-lsh-fo"),
            (problem, "sm-lsh-fi"),
            (diversity, "dv-fdp-fo"),
        ):
            warm_result = server.solve("movies", spec, algorithm=algorithm)
            cold_result = cold.solve(spec, algorithm=algorithm)
            assert warm_result.objective_value == cold_result.objective_value
            assert warm_result.descriptions() == cold_result.descriptions()
            assert warm_result.feasible == cold_result.feasible

        stats = server.stats()["movies"]
        assert stats["inserts_served"] == 80
        assert stats["snapshot_rotations"] >= 1
        assert stats["last_rotation_error"] is None
        server.close()

    def test_store_mirror_tracks_under_concurrency(self, tmp_path):
        dataset = make_dataset()
        before = dataset.n_actions
        with make_server(tmp_path) as server:
            server.add_corpus("movies", dataset)

            def inserter(label: str) -> None:
                for action in actions_for(dataset, label, 20):
                    server.insert("movies", **action)

            threads = [
                threading.Thread(target=inserter, args=(label,))
                for label in ("x", "y")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            store = server._stores["movies"]
            assert store.counts()["actions"] == before + 40


class TestFailureSemantics:
    def test_bad_insert_fails_only_its_request(self, tmp_path):
        dataset = make_dataset()
        with make_server(tmp_path) as server:
            server.add_corpus("movies", dataset)
            with pytest.raises(KeyError, match="user_attributes"):
                server.insert("movies", "ghost-user", dataset.item_of(0), ["t"])
            # The shard keeps serving.
            report = server.insert(
                "movies", dataset.user_of(0), dataset.item_of(0), ["after-error"]
            )
            assert report.actions_added == 1
            problem = table1_problem(
                1, k=3, min_support=server.shard("movies").session.default_support()
            )
            assert server.solve("movies", problem, algorithm="sm-lsh-fo") is not None

    def test_failed_rotation_recorded_not_fatal(self, tmp_path, monkeypatch):
        dataset = make_dataset()
        server = make_server(tmp_path, every_inserts=5)
        server.add_corpus("movies", dataset)
        monkeypatch.setattr(
            "repro.core.persistence.pickle.dump",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        for action in actions_for(dataset, "r", 6):
            server.insert("movies", **action)
        server.shard("movies").flush()
        stats = server.stats()["movies"]
        assert stats["inserts_served"] == 6
        assert stats["last_rotation_error"] is not None
        assert "disk full" in stats["last_rotation_error"]
        monkeypatch.undo()
        # The next due rotation succeeds and clears the error.
        for action in actions_for(dataset, "s", 6):
            server.insert("movies", **action)
        server.shard("movies").flush()
        assert server.stats()["movies"]["last_rotation_error"] is None
        server.close()

    def test_insert_after_close_raises(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", dataset)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            shard.insert(dataset.user_of(0), dataset.item_of(0), ["late"])


class TestRegistry:
    def test_duplicate_and_unknown_corpora(self, tmp_path):
        dataset = make_dataset()
        with make_server(tmp_path) as server:
            server.add_corpus("movies", dataset)
            with pytest.raises(ValueError, match="already"):
                server.add_corpus("movies", dataset)
            with pytest.raises(KeyError, match="not being served"):
                server.shard("books")
            assert server.corpus_names == ["movies"]
            assert "movies" in server and "books" not in server

    def test_corpus_name_must_be_filesystem_safe(self, tmp_path):
        with make_server(tmp_path) as server:
            with pytest.raises(ValueError, match="filesystem-safe"):
                server.add_corpus("../evil", make_dataset())

    def test_shards_are_isolated(self, tmp_path):
        movies = make_dataset()
        books = generate_movielens_style(
            n_users=20, n_items=40, n_actions=300, seed=8
        )
        books.name = "books-corpus"
        with make_server(tmp_path) as server:
            server.add_corpus("movies", movies)
            server.add_corpus("books", books)
            server.insert(
                "movies", movies.user_of(0), movies.item_of(0), ["movies-only"]
            )
            server.shard("movies").flush()
            assert server.shard("movies").session.dataset.n_actions == 601
            assert server.shard("books").session.dataset.n_actions == 300
            assert (tmp_path / "movies" / "corpus.sqlite").exists()
            assert (tmp_path / "books" / "corpus.sqlite").exists()


class TestWarmRestart:
    def test_close_then_open_resumes_warm_with_identical_solves(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", dataset)
        for action in actions_for(dataset, "w", 15):
            server.insert("movies", **action)
        shard.flush()
        problem = table1_problem(1, k=3, min_support=shard.session.default_support())
        before = server.solve("movies", problem, algorithm="sm-lsh-fo")
        groups_before = [str(g.description) for g in shard.session.groups]
        server.close()  # takes the final snapshot

        resumed = make_server(tmp_path)
        warm_shard = resumed.open_corpus("movies")
        assert warm_shard.session.dataset.n_actions == dataset.n_actions
        # Group order is preserved exactly, which is what makes the warm
        # solve bit-identical to the pre-restart one.
        assert [str(g.description) for g in warm_shard.session.groups] == groups_before
        after = resumed.solve("movies", problem, algorithm="sm-lsh-fo")
        assert after.objective_value == before.objective_value
        assert after.descriptions() == before.descriptions()
        resumed.close()

    def test_open_corpus_falls_back_to_cold_on_unusable_snapshots(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        server.add_corpus("movies", dataset)
        server.close()
        for snapshot in (tmp_path / "movies" / "snapshots").iterdir():
            snapshot.write_bytes(b"corrupted beyond repair")

        resumed = make_server(tmp_path)
        shard = resumed.open_corpus("movies")  # cold prepare fallback
        problem = table1_problem(1, k=3, min_support=shard.session.default_support())
        assert resumed.solve("movies", problem, algorithm="sm-lsh-fo") is not None
        resumed.close()

    def test_open_missing_corpus_raises(self, tmp_path):
        with make_server(tmp_path) as server:
            with pytest.raises(FileNotFoundError, match="no store"):
                server.open_corpus("nowhere")

    def test_rotation_keeps_last_k_files(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path, every_inserts=5, keep_last=2)
        shard = server.add_corpus("movies", dataset)
        for action in actions_for(dataset, "k", 30):
            server.insert("movies", **action)
        shard.flush()
        server.close()
        snapshots = sorted((tmp_path / "movies" / "snapshots").iterdir())
        assert len(snapshots) == 2
