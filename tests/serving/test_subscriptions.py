"""Standing queries end to end: the metamorphic diff/replay suite.

The pipeline under test: a registered subscription is re-solved by the
shard's :class:`~repro.serving.subscriptions.SubscriptionEvaluator`
against every freshly published view epoch, and each change commits to
the ``subscription_diffs`` ledger keyed by the insert **watermark**
(the corpus action count at freeze time).  The metamorphic contract:

* composing the delivered diff chain from an empty result reproduces,
  byte-identically under canonical JSON, a from-scratch solve over a
  cold session replaying the committed insert prefix up to the same
  watermark;
* an empty diff is never delivered (unchanged results advance the
  watermark silently);
* evaluation is at-least-once (crash between eval and notify retries;
  a reopened corpus re-notifies) while visible delivery is exactly
  once (the ledger's watermark guard suppresses replays) -- ``lost=0``
  / ``dup=0``;
* the NDJSON stream detects truncation by its envelope count, and the
  resuming reader reconnects from the last acked seq, skipping and
  replaying nothing.

The pure diff-algebra half (random payload pairs, no corpus) lives in
``tests/api/test_diff.py``; the multi-process kill drill in
``examples/chaos_demo.py``.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.api.client import HttpClient, ServerClient
from repro.api.diff import ResultDiff, apply_diff, comparable_payload, payloads_equal
from repro.api.errors import (
    ConnectionFailedError,
    SpecValidationError,
    SubscriptionExistsError,
    UnknownSubscriptionError,
)
from repro.api.service import coerce_spec, diffs_from_ndjson
from repro.core.enumeration import GroupEnumerationConfig
from repro.core.incremental import IncrementalTagDM
from repro.core.problem import table1_problem
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import (
    FaultPlan,
    FaultRule,
    SnapshotRotationPolicy,
    TagDMHttpServer,
    TagDMServer,
)

SEED = 53
ENUMERATION = GroupEnumerationConfig(min_support=5, max_groups=60)
SESSION_KWARGS = dict(
    enumeration=ENUMERATION, signature_backend="frequency", seed=3
)


def make_dataset():
    return generate_movielens_style(n_users=30, n_items=60, n_actions=400, seed=SEED)


def make_server(root, **kwargs) -> TagDMServer:
    return TagDMServer(
        root,
        policy=SnapshotRotationPolicy(every_inserts=200, keep_last=2),
        **{**SESSION_KWARGS, **kwargs},
    )


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def seeded_actions(dataset, rng: random.Random, count: int, label: str):
    return [
        {
            "user_id": dataset.user_of(rng.randrange(dataset.n_actions)),
            "item_id": dataset.item_of(rng.randrange(dataset.n_actions)),
            "tags": (f"tag-{label}-{rng.randrange(6)}", "subscribed"),
            "rating": float(rng.randrange(5)),
        }
        for _ in range(count)
    ]


def compose_ledger(diffs):
    """Fold a poll()-shaped diff list from an empty prior result."""
    state = None
    for entry in diffs:
        state = apply_diff(ResultDiff.from_dict(entry["diff"]), state)
    return state


def cold_solve_at(served_dataset, watermark: int, spec):
    """From-scratch solve over the committed insert prefix [0, watermark)."""
    cold = IncrementalTagDM(make_dataset(), **SESSION_KWARGS).prepare()
    for row in range(cold.dataset.n_actions, watermark):
        cold.add_action(
            served_dataset.user_of(row),
            served_dataset.item_of(row),
            served_dataset.tags_of(row),
            served_dataset.rating_of(row),
        )
    assert cold.dataset.n_actions == watermark
    problem, algorithm = spec.validate()
    return comparable_payload(
        cold.solve(problem, algorithm=algorithm, **dict(spec.options)).to_dict()
    )


class TestMetamorphicReplay:
    def test_diff_chain_replays_to_cold_solves(self, tmp_path):
        """The acceptance criterion: every ledger prefix composes to the
        same payload a from-scratch solve produces at that watermark."""
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", make_dataset())
        client = ServerClient(server)
        spec = coerce_spec(
            table1_problem(1, k=3, min_support=shard.session.default_support()),
            algorithm="sm-lsh-fo",
        )
        client.register_subscription("movies", spec, subscription_id="standing")
        assert shard.evaluator.wait_idle()

        rng = random.Random(SEED)
        for batch in range(3):
            for action in seeded_actions(shard.session.dataset, rng, 15, str(batch)):
                server.insert("movies", **action)
            shard.flush()
            assert shard.evaluator.wait_idle()

        poll = client.poll_subscription("movies", "standing")
        diffs = poll["diffs"]
        assert diffs, "inserts changed the corpus but delivered no diffs"
        # Ledger invariants: contiguous seqs from 1, strictly increasing
        # watermarks (exactly-once visible delivery -- no dup rows).
        assert [d["seq"] for d in diffs] == list(range(1, len(diffs) + 1))
        watermarks = [d["watermark"] for d in diffs]
        assert watermarks == sorted(set(watermarks))
        assert poll["last_seq"] == len(diffs)

        served = shard.session.dataset
        state = None
        for entry in diffs:
            state = apply_diff(ResultDiff.from_dict(entry["diff"]), state)
            expected = cold_solve_at(served, entry["watermark"], spec)
            assert canonical(state) == canonical(expected), (
                f"composed ledger prefix through seq {entry['seq']} diverges "
                f"from the from-scratch solve at watermark {entry['watermark']}"
            )
        # And the full composition matches a live solve right now.
        final = comparable_payload(client.solve("movies", spec).to_dict())
        if shard.session.dataset.n_actions == diffs[-1]["watermark"]:
            assert payloads_equal(state, final)
        server.close()

    def test_unchanged_result_delivers_no_diff(self, tmp_path):
        """Watermark moves without a result change advance the ledger
        silently: no empty diff is ever delivered."""
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", make_dataset())
        client = ServerClient(server)
        spec = coerce_spec(
            table1_problem(1, k=3, min_support=shard.session.default_support()),
            algorithm="sm-lsh-fo",
        )
        row = client.register_subscription("movies", spec, subscription_id="quiet")
        assert shard.evaluator.wait_idle()
        delivered = client.poll_subscription("movies", "quiet")["diffs"]
        for entry in delivered:
            assert not ResultDiff.from_dict(entry["diff"]).is_empty

        # Re-notifying the already-evaluated view must not re-deliver.
        shard.evaluator.notify_publish(shard.current_view())
        assert shard.evaluator.wait_idle()
        again = client.poll_subscription("movies", "quiet")["diffs"]
        assert [d["seq"] for d in again] == [d["seq"] for d in delivered]
        server.close()


class TestDeliverySemantics:
    def test_crash_between_eval_and_notify_retries_exactly_once(self, tmp_path):
        """subs.pre_notify crash: the evaluation is lost after the solve
        but before the ledger commit; the evaluator retries and the
        ledger ends up with the diff exactly once."""
        plan = FaultPlan([FaultRule("subs.pre_notify", "crash", times=1)])
        server = make_server(tmp_path, fault_plan=plan)
        shard = server.add_corpus("movies", make_dataset())
        client = ServerClient(server)
        spec = coerce_spec(
            table1_problem(1, k=3, min_support=shard.session.default_support()),
            algorithm="sm-lsh-fo",
        )
        client.register_subscription("movies", spec, subscription_id="crashy")
        assert shard.evaluator.wait_idle(timeout=30.0)

        poll = client.poll_subscription("movies", "crashy")
        assert [d["seq"] for d in poll["diffs"]] == [1]  # delivered once, not twice
        stats = shard.stats()
        assert stats["subs_notifications"] == 1
        assert stats["subs_last_error"] is not None  # the crash was recorded
        assert "subs.pre_notify" in stats["subs_last_error"]
        server.close()

    def test_reopen_bootstrap_replays_then_suppresses(self, tmp_path):
        """At-least-once evaluation across restarts: open_corpus
        re-notifies the current view; the watermark guard keeps the
        ledger exactly-once (lost=0, dup=0)."""
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", make_dataset())
        client = ServerClient(server)
        spec = coerce_spec(
            table1_problem(1, k=3, min_support=shard.session.default_support()),
            algorithm="sm-lsh-fo",
        )
        client.register_subscription("movies", spec, subscription_id="durable")
        assert shard.evaluator.wait_idle()
        rng = random.Random(SEED + 1)
        for action in seeded_actions(shard.session.dataset, rng, 10, "pre"):
            server.insert("movies", **action)
        shard.flush()
        assert shard.evaluator.wait_idle()
        before = client.poll_subscription("movies", "durable")["diffs"]
        assert before
        server.close()

        revived = make_server(tmp_path)
        shard2 = revived.open_corpus("movies")
        assert shard2.evaluator.wait_idle(timeout=30.0)
        client2 = ServerClient(revived)
        after = client2.poll_subscription("movies", "durable")["diffs"]
        # Subscriptions survived the restart; the bootstrap replay was
        # evaluated but suppressed -- the ledger is byte-identical.
        assert canonical(after) == canonical(before)
        stats = shard2.stats()
        assert stats["subs_active"] == 1
        assert stats["subs_suppressed"] >= 1
        server2_rows = client2.subscriptions("movies")
        assert [r["subscription_id"] for r in server2_rows] == ["durable"]
        revived.close()

    def test_registration_idempotency_and_conflict(self, tmp_path):
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", make_dataset())
        client = ServerClient(server)
        spec = coerce_spec(
            table1_problem(1, k=3, min_support=shard.session.default_support()),
            algorithm="sm-lsh-fo",
        )
        first = client.register_subscription(
            "movies", spec, subscription_id="dup", idempotency_key="reg-1"
        )
        assert first["deduplicated"] is False
        replay = client.register_subscription(
            "movies", spec, subscription_id="dup", idempotency_key="reg-1"
        )
        assert replay["deduplicated"] is True
        assert replay["subscription_id"] == "dup"
        with pytest.raises(SubscriptionExistsError):
            client.register_subscription("movies", spec, subscription_id="dup")
        with pytest.raises(UnknownSubscriptionError):
            client.poll_subscription("movies", "never-registered")
        server.close()


class TestNdjsonStream:
    def _ledger_lines(self, diffs, from_seq=1, n_diffs=None, last_seq=None):
        envelope = {
            "kind": "diffs",
            "subscription_id": "s",
            "from_seq": from_seq,
            "n_diffs": len(diffs) if n_diffs is None else n_diffs,
            "last_seq": (diffs[-1]["seq"] if diffs else 0) if last_seq is None else last_seq,
            "watermark": 999,
        }
        lines = [json.dumps(envelope).encode("utf-8") + b"\n"]
        for entry in diffs:
            lines.append(
                json.dumps({"kind": "diff", **entry}).encode("utf-8") + b"\n"
            )
        return lines

    def _diff_entries(self, n, start_seq=1):
        return [
            {
                "seq": start_seq + i,
                "watermark": 400 + i,
                "epoch": 1 + i,
                "diff": {
                    "watermark": 400 + i,
                    "ops": [["add", {"predicates": [["a", str(i)]], "tuple_indices": [i]}]],
                    "dropped": [],
                    "envelope": {"algorithm": "exact"},
                },
            }
            for i in range(n)
        ]

    def test_roundtrip(self):
        entries = self._diff_entries(3)
        payload = diffs_from_ndjson(self._ledger_lines(entries))
        assert [d["seq"] for d in payload["diffs"]] == [1, 2, 3]
        assert payload["last_seq"] == 3

    def test_truncated_stream_is_detected(self):
        entries = self._diff_entries(3)
        lines = self._ledger_lines(entries)[:-1]  # advertise 3, deliver 2
        with pytest.raises(SpecValidationError, match="truncated"):
            diffs_from_ndjson(lines)

    def test_wrong_envelope_kind_rejected(self):
        lines = self._ledger_lines(self._diff_entries(1))
        lines[0] = json.dumps({"kind": "result", "n_groups": 1}).encode() + b"\n"
        with pytest.raises(SpecValidationError):
            diffs_from_ndjson(lines)

    def test_non_contiguous_seq_rejected(self):
        entries = self._diff_entries(3)
        entries[2]["seq"] = 5
        with pytest.raises(SpecValidationError):
            diffs_from_ndjson(self._ledger_lines(entries))

    def test_malformed_line_rejected(self):
        lines = self._ledger_lines(self._diff_entries(2))
        lines[1] = b"{not json\n"
        with pytest.raises(SpecValidationError):
            diffs_from_ndjson(lines)


class TestHttpStreamReconnect:
    def _serving_stack(self, tmp_path, n_batches=2):
        server = make_server(tmp_path)
        shard = server.add_corpus("movies", make_dataset())
        local = ServerClient(server)
        spec = coerce_spec(
            table1_problem(1, k=3, min_support=shard.session.default_support()),
            algorithm="sm-lsh-fo",
        )
        local.register_subscription("movies", spec, subscription_id="wired")
        assert shard.evaluator.wait_idle()
        rng = random.Random(SEED + 2)
        for batch in range(n_batches):
            for action in seeded_actions(shard.session.dataset, rng, 12, str(batch)):
                server.insert("movies", **action)
            shard.flush()
            assert shard.evaluator.wait_idle()
        expected = local.poll_subscription("movies", "wired")["diffs"]
        assert expected
        return server, expected

    def test_stream_matches_poll_and_resumes_mid_ledger(self, tmp_path):
        server, expected = self._serving_stack(tmp_path)
        front = TagDMHttpServer(server).start()
        client = HttpClient(front.url, request_timeout=60.0)
        stream = client.stream_subscription("movies", "wired")
        assert canonical(stream["diffs"]) == canonical(expected)
        mid = expected[len(expected) // 2]["seq"]
        tail = client.stream_subscription("movies", "wired", from_seq=mid)
        assert [d["seq"] for d in tail["diffs"]] == [
            d["seq"] for d in expected if d["seq"] >= mid
        ]
        client.close()
        front.stop()
        server.close()

    def test_one_shot_stream_surfaces_truncation(self, tmp_path):
        """A cut stream is a typed failure, never a silently short
        suffix."""
        server, _expected = self._serving_stack(tmp_path)
        plan = FaultPlan([FaultRule("http.post_write", "truncate", at=1)])
        front = TagDMHttpServer(server, fault_plan=plan).start()
        client = HttpClient(front.url, request_timeout=60.0)
        with pytest.raises((SpecValidationError, ConnectionFailedError)):
            client.stream_subscription("movies", "wired")
        client.close()
        front.stop()
        server.close()

    def test_follow_subscription_resumes_from_last_acked_seq(self, tmp_path):
        """The resuming reader: the first stream is truncated mid-body;
        the reconnect asks for last-acked + 1 and the combined suffix
        skips and replays nothing."""
        server, expected = self._serving_stack(tmp_path)
        plan = FaultPlan([FaultRule("http.post_write", "truncate", at=1)])
        front = TagDMHttpServer(server, fault_plan=plan).start()
        client = HttpClient(front.url, request_timeout=60.0)
        payload = client.follow_subscription("movies", "wired")
        assert payload["reconnects"] == 1
        assert canonical(payload["diffs"]) == canonical(expected)
        assert [d["seq"] for d in payload["diffs"]] == list(
            range(1, len(expected) + 1)
        )
        client.close()
        front.stop()
        server.close()
