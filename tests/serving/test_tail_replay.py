"""Warm-start tail replay: snapshots lagging the store still warm-start."""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalTagDM
from repro.core.problem import table1_problem
from repro.dataset.sqlite_store import SqliteTaggingStore
from repro.dataset.synthetic import generate_movielens_style
from repro.serving import SnapshotRotationPolicy, TagDMServer

SEED = 29


def make_dataset():
    return generate_movielens_style(n_users=40, n_items=80, n_actions=500, seed=SEED)


def make_server(root, every_inserts=10_000):
    # A huge rotation threshold so the only snapshot is the one taken at
    # add_corpus / close time -- the store can then advance past it.
    return TagDMServer(
        root,
        policy=SnapshotRotationPolicy(every_inserts=every_inserts, keep_last=3),
        seed=SEED,
    )


def grow_store_past_snapshot(root, dataset, count, new_user=False):
    """Append ``count`` actions straight to the store (no snapshot)."""
    store = SqliteTaggingStore(root / "movies" / "corpus.sqlite")
    try:
        for i in range(count):
            if new_user and i == 0:
                store.append_action(
                    "tail-user",
                    dataset.item_of(0),
                    (f"tail-{i}",),
                    None,
                    user_attributes={
                        attr: "unknown" for attr in dataset.user_schema
                    },
                )
            else:
                store.append_action(
                    dataset.user_of(i), dataset.item_of(i), (f"tail-{i}",), None
                )
    finally:
        store.close()


class TestTailReplay:
    def test_lagging_snapshot_replays_the_tail_instead_of_cold_prepare(
        self, tmp_path
    ):
        dataset = make_dataset()
        server = make_server(tmp_path)
        server.add_corpus("movies", dataset)
        server.close()
        grow_store_past_snapshot(tmp_path, dataset, 12)

        resumed = make_server(tmp_path)
        shard = resumed.open_corpus("movies")
        stats = shard.stats()
        assert stats["start_mode"] == "warm-replay"
        assert stats["replayed_actions"] == 12
        assert shard.session.dataset.n_actions == 512
        resumed.close()

    def test_tail_replay_solves_match_in_order_cold_replay(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        server.add_corpus("movies", dataset)
        server.close()
        grow_store_past_snapshot(tmp_path, dataset, 12)

        resumed = make_server(tmp_path)
        shard = resumed.open_corpus("movies")

        cold = IncrementalTagDM(make_dataset(), seed=SEED).prepare()
        for i in range(12):
            cold.add_action(dataset.user_of(i), dataset.item_of(i), (f"tail-{i}",))

        problem = table1_problem(1, k=3, min_support=shard.session.default_support())
        warm_result = resumed.solve("movies", problem, algorithm="sm-lsh-fo")
        cold_result = cold.solve(problem, algorithm="sm-lsh-fo")
        assert warm_result.objective_value == cold_result.objective_value
        assert warm_result.descriptions() == cold_result.descriptions()
        assert [g.tuple_indices for g in warm_result.groups] == [
            g.tuple_indices for g in cold_result.groups
        ]
        resumed.close()

    def test_tail_with_a_new_user_registers_it_during_replay(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        server.add_corpus("movies", dataset)
        server.close()
        grow_store_past_snapshot(tmp_path, dataset, 5, new_user=True)

        resumed = make_server(tmp_path)
        shard = resumed.open_corpus("movies")
        assert shard.stats()["start_mode"] == "warm-replay"
        assert shard.session.dataset.has_user("tail-user")
        assert shard.session.dataset.n_users == dataset.n_users + 1
        resumed.close()

    def test_inserts_after_replay_mirror_into_the_store_exactly_once(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        server.add_corpus("movies", dataset)
        server.close()
        grow_store_past_snapshot(tmp_path, dataset, 7)

        resumed = make_server(tmp_path)
        shard = resumed.open_corpus("movies")
        resumed.insert("movies", dataset.user_of(0), dataset.item_of(0), ["after"])
        shard.flush()
        assert shard.session.dataset.n_actions == 508
        resumed.close()

        store = SqliteTaggingStore(tmp_path / "movies" / "corpus.sqlite")
        try:
            # 500 initial + 7 tail + 1 post-replay; the replay itself must
            # not have been mirrored back (it came *from* the store).
            assert store.counts()["actions"] == 508
        finally:
            store.close()

    def test_matching_snapshot_still_warm_starts_directly(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        server.add_corpus("movies", dataset)
        server.close()  # final snapshot covers the store exactly

        resumed = make_server(tmp_path)
        shard = resumed.open_corpus("movies")
        stats = shard.stats()
        assert stats["start_mode"] == "warm"
        assert stats["replayed_actions"] == 0
        resumed.close()

    def test_unusable_snapshots_still_fall_back_to_cold(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path)
        server.add_corpus("movies", dataset)
        server.close()
        for snapshot in (tmp_path / "movies" / "snapshots").iterdir():
            snapshot.write_bytes(b"torn beyond recognition")

        resumed = make_server(tmp_path)
        shard = resumed.open_corpus("movies")
        assert shard.stats()["start_mode"] == "cold"
        resumed.close()


class TestRotationCounters:
    def test_stats_expose_snapshot_and_start_counters(self, tmp_path):
        dataset = make_dataset()
        server = make_server(tmp_path, every_inserts=5)
        shard = server.add_corpus("movies", dataset)
        stats = server.stats()["movies"]
        assert stats["snapshots_written"] == 1  # the add_corpus snapshot
        assert stats["last_rotation_at"] is not None
        assert stats["start_mode"] == "cold"

        before = stats["last_rotation_at"]
        for i in range(5):
            server.insert("movies", dataset.user_of(i), dataset.item_of(i), ["r"])
        shard.flush()
        stats = server.stats()["movies"]
        assert stats["snapshots_written"] == 2
        assert stats["last_rotation_at"] >= before
        # the pre-PR-4 key stays aligned for older consumers
        assert stats["snapshot_rotations"] == stats["snapshots_written"]
        server.close()
