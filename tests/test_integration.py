"""End-to-end integration tests across the whole library.

These follow the full pipeline the paper's evaluation uses: generate a
corpus, prepare a session, solve all six Table 1 problems with their
recommended algorithms and with Exact, and check the cross-cutting
invariants (feasibility, quality relative to Exact, run-time ordering).
"""

from __future__ import annotations

import pytest

from repro import (
    TagDM,
    TaggingDataset,
    available_algorithms,
    generate_delicious_style,
    generate_movielens_style,
    recommend_algorithm,
    table1_problem,
)
from repro.core import GroupEnumerationConfig
from repro.algorithms import ExactAlgorithm, build_algorithm


@pytest.fixture(scope="module")
def session():
    dataset = generate_movielens_style(n_users=80, n_items=160, n_actions=2000, seed=21)
    return TagDM(
        dataset,
        enumeration=GroupEnumerationConfig(min_support=5, max_groups=60),
        signature_backend="frequency",
    ).prepare()


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        assert repro.__version__
        assert "exact" in available_algorithms()
        assert callable(generate_movielens_style)
        assert isinstance(
            generate_movielens_style(n_users=10, n_items=10, n_actions=20, seed=0),
            TaggingDataset,
        )


class TestAllTable1ProblemsEndToEnd:
    @pytest.mark.parametrize("problem_id", [1, 2, 3, 4, 5, 6])
    def test_recommended_algorithm_solves_each_problem(self, session, problem_id):
        problem = table1_problem(problem_id, k=3, min_support=session.default_support())
        algorithm = recommend_algorithm(problem)
        result = session.solve(problem, algorithm=algorithm)
        # The folding algorithms should find a feasible set on this corpus;
        # a null result is a regression for the recommended solver.
        assert not result.is_empty
        assert result.feasible
        assert result.k == 3
        assert result.support >= problem.min_support

    @pytest.mark.parametrize("problem_id", [1, 6])
    def test_heuristics_track_exact_quality(self, session, problem_id):
        problem = table1_problem(problem_id, k=3, min_support=session.default_support())
        exact = session.solve(problem, algorithm="exact")
        heuristic = session.solve(problem, algorithm=recommend_algorithm(problem))
        assert not exact.is_empty
        if not heuristic.is_empty:
            assert heuristic.objective_value >= 0.6 * exact.objective_value
            assert heuristic.objective_value <= exact.objective_value + 1e-9

    def test_exact_is_slowest_in_evaluations(self, session):
        problem = table1_problem(6, k=3, min_support=session.default_support())
        exact = session.solve(problem, algorithm="exact")
        for name in ("dv-fdp-fi", "dv-fdp-fo"):
            heuristic = session.solve(problem, algorithm=name)
            assert heuristic.evaluations < exact.evaluations

    def test_every_registered_algorithm_runs(self, session):
        problem_by_family = {
            "sm-lsh": 1,
            "sm-lsh-fi": 1,
            "sm-lsh-fo": 1,
            "dv-fdp": 6,
            "dv-fdp-fi": 6,
            "dv-fdp-fo": 6,
            "exact": 1,
        }
        for name in available_algorithms():
            problem = table1_problem(
                problem_by_family[name], k=3, min_support=session.default_support()
            )
            result = session.solve(problem, algorithm=name)
            assert result.algorithm == name
            assert result.elapsed_seconds >= 0.0


class TestCrossDomain:
    def test_delicious_corpus_end_to_end(self):
        dataset = generate_delicious_style()
        session = TagDM(
            dataset,
            enumeration=GroupEnumerationConfig(min_support=5, max_groups=50),
            signature_backend="tfidf",
        ).prepare()
        # Problem 4: diverse user groups, similar items, maximise tag
        # diversity -- the natural question for a bookmark corpus where
        # novices and experts tag the same domains differently.
        problem = table1_problem(4, k=3, min_support=session.default_support())
        result = session.solve(problem, algorithm="dv-fdp-fo")
        assert not result.is_empty
        assert result.feasible
        # The tighter problem 6 may be infeasible for the greedy on this
        # corpus; whatever comes back must never violate its constraints.
        tight = session.solve(
            table1_problem(6, k=3, min_support=session.default_support()),
            algorithm="dv-fdp-fo",
        )
        assert tight.is_empty or tight.feasible

    def test_signature_backends_agree_on_pipeline(self):
        dataset = generate_movielens_style(n_users=40, n_items=80, n_actions=800, seed=3)
        for backend in ("frequency", "tfidf"):
            session = TagDM(
                dataset,
                enumeration=GroupEnumerationConfig(min_support=5, max_groups=40),
                signature_backend=backend,
            ).prepare()
            problem = table1_problem(4, k=3, min_support=session.default_support())
            result = session.solve(problem, algorithm="dv-fdp-fo")
            assert result.k in (0, 3)


class TestDirectAlgorithmUse:
    def test_algorithms_usable_without_session(self, session):
        problem = table1_problem(1, k=3, min_support=10)
        algorithm = build_algorithm("sm-lsh-fo", n_bits=6)
        result = algorithm.solve(problem, session.groups, session.functions)
        assert result.algorithm == "sm-lsh-fo"

    def test_exact_usable_directly(self, session):
        problem = table1_problem(6, k=2, min_support=10)
        result = ExactAlgorithm().solve(problem, session.groups[:25], session.functions)
        assert result.k in (0, 2)
