"""Tier-1 smoke test for the perf-report harness.

Runs ``benchmarks/perf_report.py --quick`` end to end (seconds, not
minutes) and validates the emitted JSON against the documented schema,
so the harness future PRs rely on for their perf trajectory cannot rot.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHMARKS = REPO_ROOT / "benchmarks"


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import perf_report
    finally:
        sys.path.remove(str(BENCHMARKS))
    output = tmp_path_factory.mktemp("perf") / "bench.json"
    assert perf_report.main(["--quick", "--output", str(output)]) == 0
    return perf_report, json.loads(output.read_text(encoding="utf-8"))


class TestPerfReportQuick:
    def test_schema(self, quick_report):
        perf_report, report = quick_report
        perf_report.validate_report(report)
        assert report["mode"] == "quick"

    def test_expected_kernels_present(self, quick_report):
        _perf_report, report = quick_report
        assert set(report["kernels"]) >= {
            "greedy_max_avg_dispersion",
            "greedy_max_min_dispersion",
            "lsh_rebuild_with_bits",
            "batch_subset_scoring",
        }

    def test_kernels_keep_parity(self, quick_report):
        _perf_report, report = quick_report
        for name, entry in report["kernels"].items():
            assert entry["parity"] is True, name
            assert entry["speedup"] > 0

    def test_scaling_rows_cover_bins(self, quick_report):
        _perf_report, report = quick_report
        assert len(report["scaling"]) == 2
        tuples = [row["tuples"] for row in report["scaling"]]
        assert tuples == sorted(tuples)
        for row in report["scaling"]:
            assert row["build_seconds"] > 0
            assert set(row["solve"]) == {"p1-sm-lsh-fo", "p6-dv-fdp-fo"}

    def test_persistence_section(self, quick_report):
        """Snapshot warm loads must be faster than cold prepares with exact
        parity -- even in smoke mode, where the corpus is tiny."""
        _perf_report, report = quick_report
        persistence = report["persistence"]
        assert persistence["parity"] is True
        assert persistence["warm_load_seconds"] > 0
        assert persistence["warm_speedup"] > 1.0

    def test_serving_section(self, quick_report):
        """The warm shard must absorb every insert under concurrent clients
        and keep solve parity with a cold single-threaded replay."""
        _perf_report, report = quick_report
        serving = report["serving"]
        assert serving["parity"] is True
        assert serving["inserts"] > 0
        assert serving["inserts_per_second"] > 0
        assert serving["client_threads"] >= 4
        assert serving["snapshot_rotations"] >= 1

    def test_http_section(self, quick_report):
        """The HTTP front-end must sustain concurrent wire clients and
        return bit-identical solves to the in-process client."""
        _perf_report, report = quick_report
        http = report["http"]
        assert http["parity"] is True
        assert http["inserts"] > 0
        assert http["requests_per_second"] > 0
        assert http["client_threads"] >= 4
        assert http["http_solve_ms"] > 0
        assert http["inprocess_solve_ms"] > 0

    def test_fleet_section(self, quick_report):
        _perf_report, report = quick_report
        fleet = report["fleet"]
        assert fleet["parity"] is True
        assert [run["workers"] for run in fleet["runs"]] == [1, 2]
        assert all(run["solves_per_second"] > 0 for run in fleet["runs"])
        assert fleet["groups_returned"] > 0
        assert fleet["cpu_count"] >= 1

    def test_http_pooling_fields(self, quick_report):
        _perf_report, report = quick_report
        http = report["http"]
        assert http["stats_pooled_ms"] > 0
        assert http["stats_unpooled_ms"] > 0
        assert http["unpooled_solve_ms"] > 0

    def test_reliability_section(self, quick_report):
        """The kill drill must land every keyed insert exactly once and
        the admission gate must shed without leaking into the store."""
        _perf_report, report = quick_report
        reliability = report["reliability"]
        assert reliability["exactly_once"] is True
        assert reliability["lost_inserts"] == 0
        assert reliability["duplicated_inserts"] == 0
        assert reliability["worker_restarts"] >= 1
        assert reliability["deduplicated_replies"] >= 1
        assert reliability["solve_p99_ms"] >= reliability["solve_p50_ms"]
        admission = reliability["admission"]
        assert admission["shed"] >= 1
        assert admission["applied_equals_accepted"] is True

    def test_htap_section(self, quick_report):
        """The delta+main shard must keep solving during the insert storm
        (the RW-lock baseline starves) with bit-identical parity for
        delta-visible and post-merge solves against a serialized replay."""
        _perf_report, report = quick_report
        htap = report["htap"]
        assert htap["parity"] is True
        assert htap["delta_visible_parity"] is True
        assert htap["merged_parity"] is True
        assert htap["inserts"] > 0
        assert htap["insert_threads"] >= 2
        assert htap["baseline"]["solves_during_storm"] >= 1
        assert htap["delta_main"]["solves_during_storm"] >= 1
        assert htap["delta_main"]["merge_count"] >= 1
        assert (
            htap["delta_main"]["final_epoch"]
            == htap["delta_main"]["merge_count"] + 1
        )
        assert htap["solve_p99_speedup"] > 0

    def test_subscriptions_section(self, quick_report):
        """The standing-query evaluator must deliver every watermark
        exactly once, the composed diff chain must equal the cold
        replay, and the warm re-solve must beat it even in smoke mode
        (the cold side pays a full corpus prepare)."""
        _perf_report, report = quick_report
        subscriptions = report["subscriptions"]
        assert subscriptions["parity"] is True
        assert subscriptions["lost_diffs"] == 0
        assert subscriptions["duplicated_diffs"] == 0
        assert subscriptions["diffs_delivered"] >= 1
        assert subscriptions["notify_p99_ms"] >= subscriptions["notify_p50_ms"] > 0
        assert subscriptions["max_backlog"] >= 0
        assert subscriptions["incremental_speedup"] > 1.0


def _import_perf_report():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import perf_report
    finally:
        sys.path.remove(str(BENCHMARKS))
    return perf_report


def test_committed_bench_report_is_valid():
    """The committed BENCH_PR1.json must match the schema and its claims."""
    path = REPO_ROOT / "BENCH_PR1.json"
    assert path.exists(), "BENCH_PR1.json missing; run benchmarks/perf_report.py"
    report = json.loads(path.read_text(encoding="utf-8"))
    perf_report = _import_perf_report()
    perf_report.validate_report(report)
    assert report["mode"] == "full"
    greedy = report["kernels"]["greedy_max_avg_dispersion"]
    assert greedy["n"] == 2000 and greedy["k"] == 20
    assert greedy["speedup"] >= 5.0
    assert report["kernels"]["lsh_rebuild_with_bits"]["speedup"] >= 3.0


def test_committed_pr2_bench_report_is_valid():
    """The committed BENCH_PR2.json must back the persistence claims:
    warm-load at least 5x faster than cold prepare, with exact parity."""
    path = REPO_ROOT / "BENCH_PR2.json"
    assert path.exists(), "BENCH_PR2.json missing; run benchmarks/perf_report.py"
    report = json.loads(path.read_text(encoding="utf-8"))
    perf_report = _import_perf_report()
    perf_report.validate_report(report)
    assert report["mode"] == "full"
    persistence = report["persistence"]
    assert persistence["parity"] is True
    assert persistence["warm_speedup"] >= 5.0


def test_committed_pr3_bench_report_is_valid():
    """The committed BENCH_PR3.json must back the serving claims: a warm
    shard sustains interleaved inserts and solves from concurrent client
    threads with solve parity against a cold single-threaded replay."""
    path = REPO_ROOT / "BENCH_PR3.json"
    assert path.exists(), "BENCH_PR3.json missing; run benchmarks/perf_report.py"
    report = json.loads(path.read_text(encoding="utf-8"))
    perf_report = _import_perf_report()
    perf_report.validate_report(report)
    assert report["mode"] == "full"
    serving = report["serving"]
    assert serving["parity"] is True
    assert serving["inserts"] >= 500
    assert serving["client_threads"] >= 4
    assert serving["snapshot_rotations"] >= 1
    assert serving["inserts_per_second"] > 1.0


def test_committed_pr4_bench_report_is_valid():
    """The committed BENCH_PR4.json must back the wire-API claims: the
    HTTP front-end serves concurrent clients and an HttpClient solve is
    bit-identical to the same solve in-process on the same warm session."""
    path = REPO_ROOT / "BENCH_PR4.json"
    assert path.exists(), "BENCH_PR4.json missing; run benchmarks/perf_report.py"
    report = json.loads(path.read_text(encoding="utf-8"))
    perf_report = _import_perf_report()
    perf_report.validate_report(report)
    assert report["mode"] == "full"
    http = report["http"]
    assert http["parity"] is True
    assert http["inserts"] >= 300
    assert http["client_threads"] >= 4
    assert http["requests_per_second"] > 1.0


def test_committed_pr5_bench_report_is_valid():
    """The committed BENCH_PR5.json must back the fleet claims: solves
    routed through the router, sent directly to the owning worker and
    run single-process are bit-identical, the worker ladder (1/2/4) was
    actually measured, and the pooled-vs-unpooled client comparison is
    recorded.  Throughput *scaling* is machine-relative (bounded by
    ``fleet.cpu_count``), so it is asserted only on hosts with the cores
    to show it."""
    path = REPO_ROOT / "BENCH_PR5.json"
    assert path.exists(), "BENCH_PR5.json missing; run benchmarks/perf_report.py"
    report = json.loads(path.read_text(encoding="utf-8"))
    perf_report = _import_perf_report()
    perf_report.validate_report(report)
    assert report["mode"] == "full"
    fleet = report["fleet"]
    assert fleet["parity"] is True
    assert [run["workers"] for run in fleet["runs"]] == [1, 2, 4]
    assert fleet["corpora"] >= 4
    assert fleet["client_threads"] >= 8
    assert fleet["groups_returned"] > 0
    http = report["http"]
    assert http["stats_pooled_ms"] > 0 and http["stats_unpooled_ms"] > 0


def test_committed_pr6_bench_report_is_valid():
    """The committed BENCH_PR6.json must back the reliability claims:
    the kill drill landed every keyed insert exactly once (zero lost,
    zero duplicated, the ambiguous retry answered from the dedup log),
    the supervisor respawned the killed worker, and the admission gate
    shed load without a single shed batch leaking into the store."""
    path = REPO_ROOT / "BENCH_PR6.json"
    assert path.exists(), "BENCH_PR6.json missing; run benchmarks/perf_report.py"
    report = json.loads(path.read_text(encoding="utf-8"))
    perf_report = _import_perf_report()
    perf_report.validate_report(report)
    assert report["mode"] == "full"
    reliability = report["reliability"]
    assert reliability["exactly_once"] is True
    assert reliability["inserts"] >= 30
    assert reliability["deduplicated_replies"] >= 1
    assert reliability["worker_restarts"] >= 1
    assert reliability["admission"]["shed"] >= 1
    assert reliability["admission"]["applied_equals_accepted"] is True


def test_committed_pr7_bench_report_is_valid():
    """The committed BENCH_PR7.json must back the HTAP claims: under the
    same in-run insert storm the delta+main shard's solve p99 improved
    on the RW-lock baseline's (the acceptance criterion -- solves no
    longer stall behind the writer), the shard actually folded, and
    delta-visible and post-merge solves are bit-identical to a
    serialized replay of the committed insert order."""
    path = REPO_ROOT / "BENCH_PR7.json"
    assert path.exists(), "BENCH_PR7.json missing; run benchmarks/perf_report.py"
    report = json.loads(path.read_text(encoding="utf-8"))
    perf_report = _import_perf_report()
    perf_report.validate_report(report)
    assert report["mode"] == "full"
    htap = report["htap"]
    assert htap["parity"] is True
    assert htap["solve_p99_speedup"] > 1.0
    assert htap["inserts"] >= 500
    assert htap["delta_main"]["merge_count"] >= 1
    assert (
        htap["delta_main"]["solves_during_storm"]
        >= htap["baseline"]["solves_during_storm"]
    )


def test_committed_pr10_bench_report_is_valid():
    """The committed BENCH_PR10.json must back the standing-query
    claims: the batched insert storm delivered every ledger seq exactly
    once, the composed diff chain and the warm solve agree with a
    from-scratch cold replay at the final watermark, and the warm
    incremental re-solve is measurably faster than that replay (the
    acceptance criterion -- standing queries earn their keep)."""
    path = REPO_ROOT / "BENCH_PR10.json"
    assert path.exists(), "BENCH_PR10.json missing; run benchmarks/perf_report.py"
    report = json.loads(path.read_text(encoding="utf-8"))
    perf_report = _import_perf_report()
    perf_report.validate_report(report)
    assert report["mode"] == "full"
    subscriptions = report["subscriptions"]
    assert subscriptions["parity"] is True
    assert subscriptions["lost_diffs"] == 0
    assert subscriptions["duplicated_diffs"] == 0
    assert subscriptions["diffs_delivered"] >= 1
    assert subscriptions["inserts"] >= 100
    assert subscriptions["incremental_speedup"] > 1.0
