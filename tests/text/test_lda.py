"""Tests for the collapsed-Gibbs LDA implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.lda import LatentDirichletAllocation


def synthetic_two_topic_corpus(n_docs_per_topic: int = 20, seed: int = 0):
    """Documents drawn from two clearly separated vocabularies."""
    rng = np.random.default_rng(seed)
    topic_a = [f"a{i}" for i in range(10)]
    topic_b = [f"b{i}" for i in range(10)]
    documents = []
    for _ in range(n_docs_per_topic):
        documents.append(list(rng.choice(topic_a, size=8)))
    for _ in range(n_docs_per_topic):
        documents.append(list(rng.choice(topic_b, size=8)))
    return documents, topic_a, topic_b


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LatentDirichletAllocation(n_topics=1)
        with pytest.raises(ValueError):
            LatentDirichletAllocation(n_iterations=0)
        with pytest.raises(ValueError):
            LatentDirichletAllocation(burn_in=100, n_iterations=50)
        with pytest.raises(ValueError):
            LatentDirichletAllocation(beta=0.0)
        with pytest.raises(ValueError):
            LatentDirichletAllocation(alpha=-1.0)

    def test_fit_on_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            LatentDirichletAllocation(n_topics=2, n_iterations=5, burn_in=1).fit([])

    def test_infer_before_fit_raises(self):
        model = LatentDirichletAllocation(n_topics=2, n_iterations=5, burn_in=1)
        with pytest.raises(RuntimeError):
            model.infer(["a"])

    def test_top_words_before_fit_raises(self):
        model = LatentDirichletAllocation(n_topics=2, n_iterations=5, burn_in=1)
        with pytest.raises(RuntimeError):
            model.top_words(0)


class TestFitting:
    @pytest.fixture(scope="class")
    def fitted(self):
        documents, topic_a, topic_b = synthetic_two_topic_corpus()
        model = LatentDirichletAllocation(
            n_topics=2, n_iterations=60, burn_in=20, seed=3, alpha=0.5
        )
        result = model.fit(documents)
        return model, result, documents, topic_a, topic_b

    def test_result_summary(self, fitted):
        model, result, documents, _, _ = fitted
        assert result.n_documents == len(documents)
        assert result.vocabulary_size == 20
        assert result.n_topics == 2
        assert result.iterations_run == 60
        assert np.isfinite(result.final_log_likelihood)

    def test_distributions_are_normalised(self, fitted):
        model, _, documents, _, _ = fitted
        assert model.doc_topic_.shape == (len(documents), 2)
        assert model.topic_word_.shape == (2, 20)
        assert np.allclose(model.doc_topic_.sum(axis=1), 1.0)
        assert np.allclose(model.topic_word_.sum(axis=1), 1.0)

    def test_topics_recover_the_two_vocabularies(self, fitted):
        """Each latent topic should concentrate on one of the two word sets."""
        model, _, _, topic_a, topic_b = fitted
        top_0 = {token for token, _ in model.top_words(0, n=10)}
        top_1 = {token for token, _ in model.top_words(1, n=10)}
        a_set, b_set = set(topic_a), set(topic_b)
        score_aligned = len(top_0 & a_set) + len(top_1 & b_set)
        score_crossed = len(top_0 & b_set) + len(top_1 & a_set)
        assert max(score_aligned, score_crossed) >= 16

    def test_documents_assigned_to_their_topic(self, fitted):
        model, _, documents, _, _ = fitted
        theta = model.doc_topic_
        first_half = theta[:20].argmax(axis=1)
        second_half = theta[20:].argmax(axis=1)
        # All documents of one half share a dominant topic, and the two
        # halves use different topics.
        assert len(set(first_half)) == 1
        assert len(set(second_half)) == 1
        assert first_half[0] != second_half[0]

    def test_log_likelihood_improves_over_training(self, fitted):
        _, result, _, _, _ = fitted
        trace = result.log_likelihood_trace
        assert trace[-1] > trace[0]

    def test_fit_is_deterministic_given_seed(self):
        documents, _, _ = synthetic_two_topic_corpus()
        model_a = LatentDirichletAllocation(n_topics=2, n_iterations=20, burn_in=5, seed=9)
        model_b = LatentDirichletAllocation(n_topics=2, n_iterations=20, burn_in=5, seed=9)
        model_a.fit(documents)
        model_b.fit(documents)
        assert np.allclose(model_a.doc_topic_, model_b.doc_topic_)
        assert np.allclose(model_a.topic_word_, model_b.topic_word_)


class TestInference:
    @pytest.fixture(scope="class")
    def fitted(self):
        documents, topic_a, topic_b = synthetic_two_topic_corpus()
        model = LatentDirichletAllocation(
            n_topics=2, n_iterations=60, burn_in=20, seed=3, alpha=0.5
        )
        model.fit(documents)
        return model, topic_a, topic_b

    def test_infer_returns_distribution(self, fitted):
        model, topic_a, _ = fitted
        distribution = model.infer(topic_a[:5], n_iterations=30)
        assert distribution.shape == (2,)
        assert distribution.sum() == pytest.approx(1.0)
        assert np.all(distribution >= 0)

    def test_infer_unknown_tokens_gives_uniform(self, fitted):
        model, _, _ = fitted
        distribution = model.infer(["zzz", "qqq"])
        assert np.allclose(distribution, 0.5)

    def test_infer_separates_the_topics(self, fitted):
        model, topic_a, topic_b = fitted
        dist_a = model.infer(topic_a[:6], n_iterations=40, seed=1)
        dist_b = model.infer(topic_b[:6], n_iterations=40, seed=1)
        assert dist_a.argmax() != dist_b.argmax()
        assert dist_a.max() > 0.7
        assert dist_b.max() > 0.7

    def test_transform_stacks_documents(self, fitted):
        model, topic_a, topic_b = fitted
        matrix = model.transform([topic_a[:4], topic_b[:4]])
        assert matrix.shape == (2, 2)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_top_words_bounds(self, fitted):
        model, _, _ = fitted
        with pytest.raises(IndexError):
            model.top_words(5)
