"""Tests for the tag-cloud construction and rendering (Figures 1-2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.text.tagcloud import build_tag_cloud, render_tag_cloud


TAGS = ["drama"] * 5 + ["war"] * 3 + ["classic"] * 2 + ["psychiatry"]


class TestBuildTagCloud:
    def test_entries_sorted_by_count(self):
        cloud = build_tag_cloud(TAGS, title="movies")
        assert cloud.tags()[:2] == ["drama", "war"]
        assert cloud.counts()["drama"] == 5

    def test_sizes_relative_to_max(self):
        cloud = build_tag_cloud(TAGS)
        entries = {entry.tag: entry for entry in cloud.entries}
        assert entries["drama"].size == pytest.approx(1.0)
        assert entries["war"].size == pytest.approx(3 / 5)

    def test_max_tags_truncates(self):
        cloud = build_tag_cloud(TAGS, max_tags=2)
        assert len(cloud.entries) == 2

    def test_invalid_max_tags(self):
        with pytest.raises(ValueError):
            build_tag_cloud(TAGS, max_tags=0)

    def test_normalisation_merges_variants(self):
        cloud = build_tag_cloud(["Drama", "drama!", "War"])
        assert cloud.counts() == {"drama": 2, "war": 1}

    def test_empty_input(self):
        cloud = build_tag_cloud([])
        assert cloud.entries == []
        assert "(no tags)" in render_tag_cloud(cloud)

    def test_top_returns_largest(self):
        cloud = build_tag_cloud(TAGS)
        assert [entry.tag for entry in cloud.top(2)] == ["drama", "war"]


class TestComparisons:
    def test_overlap_and_difference(self):
        all_users = build_tag_cloud(["woody", "allen", "drama", "noiva-nervosa"])
        ca_users = build_tag_cloud(["woody", "allen", "classic", "psychiatry"])
        assert set(all_users.overlap(ca_users)) == {"woody", "allen"}
        assert all_users.difference(ca_users) == ["drama", "noiva-nervosa"]
        assert ca_users.difference(all_users) == ["classic", "psychiatry"]

    def test_overlap_with_top_n_restriction(self):
        a = build_tag_cloud(["x"] * 5 + ["shared"] * 4 + ["rare"])
        b = build_tag_cloud(["shared"] * 2 + ["rare"])
        assert "rare" in a.overlap(b)
        assert "rare" not in a.overlap(b, n=2)


class TestRendering:
    def test_render_contains_title_counts_and_bands(self):
        cloud = build_tag_cloud(TAGS, title="woody allen movies")
        text = render_tag_cloud(cloud)
        assert "== woody allen movies ==" in text
        assert "drama(5)####" in text
        assert "psychiatry(1)" in text

    def test_render_respects_columns(self):
        cloud = build_tag_cloud(TAGS)
        two_columns = render_tag_cloud(cloud, columns=2)
        assert len(two_columns.splitlines()) >= 3

    def test_render_invalid_columns(self):
        with pytest.raises(ValueError):
            render_tag_cloud(build_tag_cloud(TAGS), columns=0)

    @given(
        tags=st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=60),
        max_tags=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_sizes_always_in_unit_interval(self, tags, max_tags):
        cloud = build_tag_cloud(tags, max_tags=max_tags)
        assert all(0.0 < entry.size <= 1.0 for entry in cloud.entries)
        assert len(cloud.entries) <= max_tags
