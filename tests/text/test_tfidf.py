"""Tests for the tf*idf vectoriser."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.text.tfidf import TfIdfVectorizer

DOCUMENTS = [
    ["drama", "war", "history"],
    ["drama", "romance"],
    ["comedy", "romance", "romance"],
    ["war", "documentary"],
]


class TestFitTransform:
    def test_requires_fit_before_transform(self):
        with pytest.raises(RuntimeError):
            TfIdfVectorizer().transform([["a"]])

    def test_fit_on_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            TfIdfVectorizer().fit([])

    def test_vocabulary_built_from_corpus(self):
        vectorizer = TfIdfVectorizer().fit(DOCUMENTS)
        assert set(vectorizer.feature_names()) == {
            "drama",
            "war",
            "history",
            "romance",
            "comedy",
            "documentary",
        }
        assert vectorizer.n_features == 6

    def test_max_features_keeps_most_frequent(self):
        vectorizer = TfIdfVectorizer(max_features=2).fit(DOCUMENTS)
        names = vectorizer.feature_names()
        assert len(names) == 2
        # drama, war and romance all appear in two documents; ties break
        # alphabetically so the selected pair is deterministic.
        assert set(names) <= {"drama", "war", "romance"}

    def test_invalid_max_features(self):
        with pytest.raises(ValueError):
            TfIdfVectorizer(max_features=0)

    def test_transform_shape(self):
        matrix = TfIdfVectorizer().fit_transform(DOCUMENTS)
        assert matrix.shape == (4, 6)

    def test_l2_normalisation(self):
        matrix = TfIdfVectorizer(normalize=True).fit_transform(DOCUMENTS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms, 1.0)

    def test_unnormalised_output(self):
        matrix = TfIdfVectorizer(normalize=False).fit_transform(DOCUMENTS)
        norms = np.linalg.norm(matrix, axis=1)
        assert not np.allclose(norms, 1.0)

    def test_rare_terms_outweigh_common_terms(self):
        vectorizer = TfIdfVectorizer(normalize=False, sublinear_tf=False).fit(DOCUMENTS)
        matrix = vectorizer.transform([["history", "drama"]])
        names = vectorizer.feature_names()
        history_weight = matrix[0, names.index("history")]
        drama_weight = matrix[0, names.index("drama")]
        assert history_weight > drama_weight

    def test_unknown_tokens_are_ignored(self):
        vectorizer = TfIdfVectorizer().fit(DOCUMENTS)
        matrix = vectorizer.transform([["unseen-token"]])
        assert np.allclose(matrix, 0.0)

    def test_tag_normalisation_applied(self):
        vectorizer = TfIdfVectorizer().fit([["Drama!"], ["drama"]])
        assert vectorizer.feature_names() == ["drama"]

    def test_lowercase_false_keeps_tokens_verbatim(self):
        vectorizer = TfIdfVectorizer(lowercase=False).fit([["Drama"], ["drama"]])
        assert set(vectorizer.feature_names()) == {"Drama", "drama"}


class TestProperties:
    @given(
        documents=st.lists(
            st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=6),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_vectors_are_finite_and_nonnegative(self, documents):
        matrix = TfIdfVectorizer().fit_transform(documents)
        assert np.all(np.isfinite(matrix))
        assert np.all(matrix >= 0.0)

    @given(
        documents=st.lists(
            st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=5),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_documents_get_identical_vectors(self, documents):
        vectorizer = TfIdfVectorizer().fit(documents)
        matrix = vectorizer.transform([documents[0], documents[0]])
        assert np.allclose(matrix[0], matrix[1])
