"""Tests for tag normalisation."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.text.tokenize import normalize_tag, normalize_tags, tag_counts


class TestNormalizeTag:
    def test_lowercases(self):
        assert normalize_tag("Drama") == "drama"

    def test_strips_punctuation(self):
        assert normalize_tag("Sci  Fi!") == "sci-fi"

    def test_preserves_hyphens(self):
        assert normalize_tag("black-and-white") == "black-and-white"

    def test_collapses_whitespace_to_hyphen(self):
        assert normalize_tag("  new   york  ") == "new-york"

    def test_empty_after_cleaning(self):
        assert normalize_tag("!!!") == ""
        assert normalize_tag("") == ""

    def test_numbers_survive(self):
        assert normalize_tag("Top 100") == "top-100"

    @given(st.text(max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, raw):
        once = normalize_tag(raw)
        assert normalize_tag(once) == once

    @given(st.text(max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_output_alphabet(self, raw):
        result = normalize_tag(raw)
        assert all(ch.islower() or ch.isdigit() or ch == "-" for ch in result)


class TestNormalizeTags:
    def test_drops_empty_results(self):
        assert normalize_tags(["Drama", "!!!", "War"]) == ["drama", "war"]

    def test_preserves_order_and_duplicates(self):
        assert normalize_tags(["b", "a", "B"]) == ["b", "a", "b"]


class TestTagCounts:
    def test_counts_normalised(self):
        counts = tag_counts(["Drama", "drama", "War"])
        assert counts == {"drama": 2, "war": 1}

    def test_counts_raw_when_normalize_false(self):
        counts = tag_counts(["Drama", "drama"], normalize=False)
        assert counts == {"Drama": 1, "drama": 1}
