"""Tests for the topic-model backends and synonym folding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.topics import (
    FrequencyTopicModel,
    LdaTopicModel,
    SynonymFolder,
    TfIdfTopicModel,
    build_topic_model,
)

CORPUS = [
    ["drama", "war", "history", "oscar"],
    ["drama", "romance", "tear-jerker"],
    ["comedy", "romance", "funny", "funny"],
    ["war", "documentary", "history"],
    ["comedy", "slapstick", "funny"],
]


class TestSynonymFolder:
    def test_default_table(self):
        folder = SynonymFolder()
        assert folder.canonical("scifi") == "science-fiction"
        assert folder.canonical("unknown-tag") == "unknown-tag"

    def test_custom_entries_extend_table(self):
        folder = SynonymFolder({"flick": "movie"})
        assert folder.canonical("flick") == "movie"
        assert folder.canonical("scifi") == "science-fiction"

    def test_add(self):
        folder = SynonymFolder()
        folder.add("teardrop", "sad")
        assert folder.fold(["teardrop", "x"]) == ["sad", "x"]


class TestFrequencyTopicModel:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            FrequencyTopicModel(n_dimensions=5).vectorize(["a"])

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            FrequencyTopicModel(n_dimensions=0)

    def test_vector_shape_and_normalisation(self):
        model = FrequencyTopicModel(n_dimensions=4).fit(CORPUS)
        vector = model.vectorize(["drama", "war", "war"])
        assert vector.shape == (4,)
        assert vector.sum() == pytest.approx(1.0)

    def test_unknown_tags_yield_zero_vector(self):
        model = FrequencyTopicModel(n_dimensions=4).fit(CORPUS)
        assert np.allclose(model.vectorize(["zzz"]), 0.0)

    def test_dimension_labels_are_top_tags(self):
        model = FrequencyTopicModel(n_dimensions=3).fit(CORPUS)
        labels = model.dimension_labels()
        assert len(labels) == 3
        assert "funny" in labels  # the most frequent tag overall

    def test_labels_padded_when_vocabulary_small(self):
        model = FrequencyTopicModel(n_dimensions=10).fit([["a"], ["b"]])
        labels = model.dimension_labels()
        assert len(labels) == 10
        assert labels[0] in ("a", "b")
        assert labels[-1].startswith("<unused")

    def test_synonyms_are_folded_before_counting(self):
        model = FrequencyTopicModel(
            n_dimensions=3, synonym_folder=SynonymFolder()
        ).fit([["funny", "hilarious"], ["comedy"]])
        labels = model.dimension_labels()
        assert "comedy" in labels
        assert "hilarious" not in labels

    def test_vectorize_many(self):
        model = FrequencyTopicModel(n_dimensions=4).fit(CORPUS)
        matrix = model.vectorize_many(CORPUS[:3])
        assert matrix.shape == (3, 4)
        assert model.vectorize_many([]).shape == (0, 4)


class TestTfIdfTopicModel:
    def test_vector_shape(self):
        model = TfIdfTopicModel(n_dimensions=5).fit(CORPUS)
        assert model.vectorize(["drama", "war"]).shape == (5,)
        assert model.n_dimensions == 5

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TfIdfTopicModel(n_dimensions=-1)

    def test_similar_documents_closer_than_different(self):
        model = TfIdfTopicModel(n_dimensions=8).fit(CORPUS)
        war_a = model.vectorize(["war", "history"])
        war_b = model.vectorize(["war", "documentary", "history"])
        comedy = model.vectorize(["comedy", "funny", "slapstick"])

        def cosine(u, v):
            return float(np.dot(u, v) / (np.linalg.norm(u) * np.linalg.norm(v) + 1e-12))

        assert cosine(war_a, war_b) > cosine(war_a, comedy)


class TestLdaTopicModel:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            LdaTopicModel(n_topics=2, n_iterations=5).vectorize(["a"])

    def test_fit_on_empty_documents_raises(self):
        with pytest.raises(ValueError):
            LdaTopicModel(n_topics=2, n_iterations=5).fit([[], []])

    def test_vector_is_topic_distribution(self):
        model = LdaTopicModel(n_topics=3, n_iterations=20, seed=1).fit(CORPUS)
        vector = model.vectorize(["drama", "war"])
        assert vector.shape == (3,)
        assert vector.sum() == pytest.approx(1.0)

    def test_dimension_labels_mention_topics(self):
        model = LdaTopicModel(n_topics=2, n_iterations=15, seed=1).fit(CORPUS)
        labels = model.dimension_labels()
        assert len(labels) == 2
        assert all(label.startswith("topic:") for label in labels)


class TestFactory:
    @pytest.mark.parametrize("backend", ["frequency", "tfidf", "lda"])
    def test_build_known_backends(self, backend):
        model = build_topic_model(backend=backend, n_dimensions=6, lda_iterations=10)
        assert model.n_dimensions == 6
        assert model.name == backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            build_topic_model(backend="word2vec")

    def test_factory_passes_synonyms(self):
        model = build_topic_model(backend="frequency", n_dimensions=3, synonyms={"x": "y"})
        model.fit([["x", "y"], ["z"]])
        labels = model.dimension_labels()
        assert "x" not in labels
