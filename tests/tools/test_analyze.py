"""Self-tests for the static-analysis suite (``tools/analyze``).

Two halves: a fixture corpus of known-bad sources that every check
family must flag (the analyzer analyzing the analyzer's blind spots),
and repo-level tests that the committed tree is clean modulo the
committed baseline.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analyze import (  # noqa: E402
    contracts,
    determinism,
    doclinks,
    locks,
    order,
    races,
    writers,
)
from tools.analyze.cli import CHECKS, main  # noqa: E402
from tools.analyze.core import Baseline, Finding  # noqa: E402
from tools.analyze.explain import EXPLANATIONS  # noqa: E402
from tools.analyze.hierarchy import LOCK_DECLS, LOCK_ORDER  # noqa: E402
from tools.analyze.ownership import OWNERSHIP_DECLS, OwnershipDecl  # noqa: E402

SHARDS = "src/repro/serving/shards.py"  # a module with declared locks


def codes(findings):
    return [finding.code for finding in findings]


# ---------------------------------------------------------------------------
# lock discipline (LD1xx)
# ---------------------------------------------------------------------------


class TestLockDiscipline:
    def test_bare_acquire_flagged(self):
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        self._mutex.acquire()\n"
            "        self.x = 1\n"
            "        self._mutex.release()\n"
        )
        findings, _ = locks.check_file("m.py", src)
        assert codes(findings) == ["LD101"]

    def test_acquire_without_any_release_flagged(self):
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        self._mutex.acquire()\n"
            "        return self.x\n"
        )
        findings, _ = locks.check_file("m.py", src)
        assert codes(findings) == ["LD101"]

    def test_try_finally_release_accepted(self):
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        self._mutex.acquire()\n"
            "        try:\n"
            "            self.x = 1\n"
            "        finally:\n"
            "            self._mutex.release()\n"
        )
        findings, _ = locks.check_file("m.py", src)
        assert findings == []

    def test_nonblocking_probe_accepted(self):
        # the fleet supervisor idiom: branch on a non-blocking probe
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        got = self._mutex.acquire(blocking=False)\n"
            "        if not got:\n"
            "            return\n"
            "        try:\n"
            "            self.x = 1\n"
            "        finally:\n"
            "            self._mutex.release()\n"
        )
        findings, _ = locks.check_file("m.py", src)
        assert findings == []

    def test_blocking_call_under_fast_path_lock(self):
        src = (
            "import time\n"
            "class CorpusShard:\n"
            "    def f(self):\n"
            "        with self._submit_lock:\n"
            "            time.sleep(1)\n"
        )
        findings, _ = locks.check_file(SHARDS, src)
        assert codes(findings) == ["LD102"]
        assert findings[0].key == "shard.submit:sleep"

    def test_sqlite_execute_under_fast_path_lock(self):
        src = (
            "class CorpusShard:\n"
            "    def f(self, conn):\n"
            "        with self._stats_lock:\n"
            "            conn.execute('select 1')\n"
        )
        findings, _ = locks.check_file(SHARDS, src)
        assert codes(findings) == ["LD102"]

    def test_dict_get_not_confused_with_queue_get(self):
        src = (
            "class CorpusShard:\n"
            "    def f(self, mapping):\n"
            "        with self._submit_lock:\n"
            "            return mapping.get('x')\n"
        )
        findings, _ = locks.check_file(SHARDS, src)
        assert findings == []

    def test_queue_get_with_timeout_accepted(self):
        src = (
            "class CorpusShard:\n"
            "    def f(self):\n"
            "        with self._submit_lock:\n"
            "            return self._queue.get(timeout=1.0)\n"
        )
        findings, _ = locks.check_file(SHARDS, src)
        assert findings == []

    def test_nested_function_body_not_scanned(self):
        src = (
            "import time\n"
            "class CorpusShard:\n"
            "    def f(self):\n"
            "        with self._submit_lock:\n"
            "            def later():\n"
            "                time.sleep(1)\n"
            "            return later\n"
        )
        findings, _ = locks.check_file(SHARDS, src)
        assert findings == []

    def test_undeclared_lock_flagged(self):
        src = (
            "import threading\n"
            "class CorpusShard:\n"
            "    def __init__(self):\n"
            "        self._rogue = threading.Lock()\n"
        )
        findings, _ = locks.check_file(SHARDS, src)
        assert codes(findings) == ["LD103"]

    def test_name_mismatch_flagged(self):
        src = (
            "class CorpusShard:\n"
            "    def __init__(self):\n"
            "        self._submit_lock = named_lock('wrong.name')\n"
        )
        findings, _ = locks.check_file(SHARDS, src)
        assert codes(findings) == ["LD103"]
        assert "wrong.name" in findings[0].message

    def test_raw_threading_lock_for_declared_attr_flagged(self):
        src = (
            "import threading\n"
            "class CorpusShard:\n"
            "    def __init__(self):\n"
            "        self._submit_lock = threading.Lock()\n"
        )
        findings, _ = locks.check_file(SHARDS, src)
        assert codes(findings) == ["LD103"]
        assert "witness" in findings[0].message


# ---------------------------------------------------------------------------
# deadlock hierarchy (LH2xx)
# ---------------------------------------------------------------------------


class TestHierarchy:
    def test_inversion_flagged(self):
        src = (
            "class CorpusShard:\n"
            "    def f(self):\n"
            "        with self._stats_lock:\n"
            "            with self._submit_lock:\n"
            "                pass\n"
        )
        findings = order.check_file(SHARDS, src)
        assert codes(findings) == ["LH201"]
        assert findings[0].key == "inversion:shard.stats->shard.submit"

    def test_correct_order_accepted(self):
        src = (
            "class CorpusShard:\n"
            "    def f(self):\n"
            "        with self._submit_lock:\n"
            "            with self._stats_lock:\n"
            "                pass\n"
        )
        assert order.check_file(SHARDS, src) == []

    def test_self_nesting_of_plain_lock_flagged(self):
        src = (
            "class CorpusShard:\n"
            "    def f(self):\n"
            "        with self._submit_lock:\n"
            "            with self._submit_lock:\n"
            "                pass\n"
        )
        findings = order.check_file(SHARDS, src)
        assert codes(findings) == ["LH201"]
        assert "self-deadlock" in findings[0].message

    def test_self_nesting_of_rlock_accepted(self):
        src = (
            "class CorpusShard:\n"
            "    def f(self):\n"
            "        with self._maintenance_lock:\n"
            "            with self._maintenance_lock:\n"
            "                pass\n"
        )
        assert order.check_file(SHARDS, src) == []

    def test_nested_def_resets_held_stack(self):
        src = (
            "class CorpusShard:\n"
            "    def f(self):\n"
            "        with self._stats_lock:\n"
            "            def later(self):\n"
            "                with self._submit_lock:\n"
            "                    pass\n"
            "            return later\n"
        )
        assert order.check_file(SHARDS, src) == []

    def test_witness_drift_flagged(self):
        findings = order.check_witness_module("LOCK_HIERARCHY = ('a', 'b')\n")
        assert codes(findings) == ["LH202"]

    def test_witness_missing_tuple_flagged(self):
        findings = order.check_witness_module("X = 1\n")
        assert codes(findings) == ["LH202"]
        assert findings[0].key == "missing-hierarchy"

    def test_witness_matching_tuple_accepted(self):
        literal = ", ".join(repr(name) for name in LOCK_ORDER)
        assert order.check_witness_module(f"LOCK_HIERARCHY = ({literal})\n") == []

    def test_every_decl_is_ranked(self):
        assert {d.name for d in LOCK_DECLS} == set(LOCK_ORDER)


# ---------------------------------------------------------------------------
# wire contracts (WC3xx)
# ---------------------------------------------------------------------------


class TestContracts:
    def test_missing_error_class_flagged(self):
        src = "class ApiError(Exception):\n    code = 'internal'\n    status = 500\n"
        src += "_ERRORS_BY_CODE = {cls.code: cls for cls in (ApiError,)}\n"
        findings = contracts.check_errors_module(src)
        assert "WC301" in codes(findings)

    def test_status_drift_flagged(self):
        real = (REPO_ROOT / "src/repro/api/errors.py").read_text()
        drifted = real.replace("status = 429", "status = 500")
        findings = contracts.check_errors_module(drifted)
        assert any(f.key == "class-drift:OverloadedError" for f in findings)

    def test_real_errors_module_clean(self):
        real = (REPO_ROOT / "src/repro/api/errors.py").read_text()
        assert contracts.check_errors_module(real) == []

    def test_error_doc_missing_row_flagged(self):
        text = (
            "| Class | code | HTTP |\n"
            "| --- | --- | --- |\n"
            "| `ApiError` | `internal` | 500 |\n"
        )
        findings = contracts.check_error_doc(text)
        assert all(f.code == "WC302" for f in findings)
        assert any("SolveTimeoutError" in f.message for f in findings)

    def test_unknown_fire_site_flagged(self):
        src = "plan.fire('shard.bogus')\n"
        findings = contracts.check_fire_sites(src, "src/repro/x.py")
        assert codes(findings) == ["WC303"]

    def test_fault_doc_drift_flagged(self):
        text = (
            "| Point | Fires | Typical drill |\n"
            "| --- | --- | --- |\n"
            "| `shard.apply` | writer | stall |\n"
            "| `shard.retired_point` | nowhere | - |\n"
        )
        findings = contracts.check_fault_doc(text)
        assert any(f.key == "unknown-point:shard.retired_point" for f in findings)
        assert any(f.key == "undocumented-point:pool.pre_send" for f in findings)

    def test_stale_doc_token_flagged(self):
        findings = contracts.check_doc_tokens(
            "restart drills arm `shard.no_such_point` first\n", "SERVING.md"
        )
        assert codes(findings) == ["WC304"]

    def test_test_rule_with_unknown_point_flagged(self):
        src = "plan = FaultPlan([FaultRule('merge.bogus', 'crash')])\n"
        findings = contracts.check_test_rules(src, "tests/x.py")
        assert codes(findings) == ["WC305"]

    def test_synthetic_single_word_points_allowed(self):
        src = "rules = [FaultRule('p', 'reset'), FaultRule('s', 'sleep')]\n"
        assert contracts.check_test_rules(src, "tests/x.py") == []

    def test_stats_key_drift_flagged(self):
        real = (REPO_ROOT / "src" / "repro" / "serving" / "shards.py").read_text()
        drifted = real.replace('"queue_depth"', '"queue_len"')
        findings = contracts.check_stats_source(drifted)
        found_keys = {f.key for f in findings}
        assert "missing-key:queue_depth" in found_keys
        assert "undeclared-key:queue_len" in found_keys

    def test_algorithm_registry_drift_flagged(self):
        src = (
            "@register_algorithm\n"
            "class Novel:\n"
            "    name = 'sm-lsh-turbo'\n"
        )
        findings = contracts.check_algorithm_sources([("src/repro/algorithms/x.py", src)])
        assert any(f.key == "undeclared-algorithm:sm-lsh-turbo" for f in findings)
        assert any(f.code == "WC308" and "missing" in f.key for f in findings)

    def test_algorithm_doc_drift_flagged(self):
        findings = contracts.check_algorithm_doc("only `exact` and `sm-lsh` here\n")
        assert any(f.key == "undocumented-algorithm:dv-fdp" for f in findings)


# ---------------------------------------------------------------------------
# writer hygiene (WR4xx)
# ---------------------------------------------------------------------------


class TestWriters:
    def test_unannotated_mutators_flagged(self):
        session_src = (
            "class IncrementalTagDM:\n"
            "    def add_action(self):\n        pass\n"
            "    def add_actions(self):\n        pass\n"
            "    def refresh_topic_model(self):\n        pass\n"
        )
        store_src = (
            "class SqliteTaggingStore:\n"
            + "".join(
                f"    def {name}(self):\n        pass\n"
                for name in writers.STORE_MUTATORS
            )
        )
        findings = writers.check_mutator_defs(session_src, store_src)
        assert codes(findings) == ["WR401"] * (3 + len(writers.STORE_MUTATORS))

    def test_annotated_but_unguarded_store_mutator_flagged(self):
        session_src = (
            "class IncrementalTagDM:\n"
            + "".join(
                f"    @locked_by('shard.merge')\n    def {name}(self):\n        pass\n"
                for name in writers.SESSION_MUTATORS
            )
        )
        store_src = (
            "class SqliteTaggingStore:\n"
            "    @locked_by('store.lock')\n"
            "    def register_user(self):\n"
            "        self.x = 1\n"  # never takes self._lock
            + "".join(
                f"    @locked_by('store.lock')\n"
                f"    def {name}(self):\n"
                f"        with self._lock:\n            pass\n"
                for name in writers.STORE_MUTATORS
                if name != "register_user"
            )
        )
        findings = writers.check_mutator_defs(session_src, store_src)
        assert codes(findings) == ["WR403"]
        assert findings[0].key == "unguarded-body:register_user"

    def test_real_mutator_defs_clean(self):
        findings = writers.check_mutator_defs(
            (REPO_ROOT / "src/repro/core/incremental.py").read_text(),
            (REPO_ROOT / "src/repro/dataset/sqlite_store.py").read_text(),
        )
        assert findings == []

    def test_unsynchronized_call_site_flagged(self):
        src = (
            "class Handler:\n"
            "    def f(self):\n"
            "        self.session.add_actions([])\n"
        )
        findings = writers.check_call_sites("src/repro/serving/x.py", src)
        assert codes(findings) == ["WR402"]

    def test_write_locked_call_site_accepted(self):
        src = (
            "class Handler:\n"
            "    def f(self):\n"
            "        with self._lock.write_locked():\n"
            "            self.session.add_actions([])\n"
        )
        assert writers.check_call_sites("src/repro/serving/x.py", src) == []

    def test_read_locked_does_not_satisfy_writer_context(self):
        src = (
            "class Handler:\n"
            "    def f(self):\n"
            "        with self._lock.read_locked():\n"
            "            self.session.add_actions([])\n"
        )
        findings = writers.check_call_sites("src/repro/serving/x.py", src)
        assert codes(findings) == ["WR402"]

    def test_writer_context_comment_accepted(self):
        src = (
            "class Handler:\n"
            "    def f(self):\n"
            "        # analyze: writer-context -- startup only\n"
            "        self.session.add_actions([])\n"
        )
        assert writers.check_call_sites("src/repro/serving/x.py", src) == []

    def test_locked_by_decorated_caller_accepted(self):
        src = (
            "class Handler:\n"
            "    @locked_by('shard.merge')\n"
            "    def f(self):\n"
            "        self.session.add_actions([])\n"
        )
        assert writers.check_call_sites("src/repro/serving/x.py", src) == []

    def test_dataset_add_action_not_confused_with_session(self):
        src = (
            "class Loader:\n"
            "    def f(self, dataset):\n"
            "        dataset.add_action('u', 'i', ['t'])\n"
        )
        assert writers.check_call_sites("src/repro/dataset/x.py", src) == []


# ---------------------------------------------------------------------------
# doc links (DL5xx)
# ---------------------------------------------------------------------------


class TestDocLinks:
    def test_broken_link_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text("[gone](MISSING.md)\n")
        findings = doclinks.check_text(
            "README.md", "[gone](MISSING.md)\n", tmp_path
        )
        assert codes(findings) == ["DL501"]

    def test_escaping_link_flagged(self, tmp_path):
        findings = doclinks.check_text(
            "README.md", "[up](../outside.md)\n", tmp_path
        )
        assert codes(findings) == ["DL502"]

    def test_external_and_anchor_links_ignored(self, tmp_path):
        text = "[a](https://example.com) [b](#section) [c](mailto:x@y.z)\n"
        assert doclinks.check_text("README.md", text, tmp_path) == []


# ---------------------------------------------------------------------------
# shared-state races (RC5xx)
# ---------------------------------------------------------------------------


class TestRaces:
    def test_undeclared_attribute_flagged(self):
        src = (
            "@owned_by(x='init-only')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "        self.y = 2\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC501"]
        assert findings[0].key == "undeclared:C.y"

    def test_unknown_domain_flagged(self):
        src = (
            "@owned_by(x='protected-by-vibes')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC501"]
        assert findings[0].key == "bad-domain:C.x"

    def test_post_init_write_to_init_only_flagged(self):
        src = (
            "@owned_by(x='init-only')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "    def f(self):\n"
            "        self.x = 2\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC502"]
        assert findings[0].key == "post-init:C.x:f"

    def test_post_publish_del_flagged(self):
        src = (
            "@owned_by(x='frozen-after-publish')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "    def f(self):\n"
            "        del self.x\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC502"]
        assert findings[0].key == "post-publish:C.x:f"

    def test_unlocked_write_flagged_locked_write_accepted(self):
        # _maintenance_lock is the only LockDecl with that attribute
        # name, so the lexical `with` resolves even in a synthetic class.
        src = (
            "@owned_by(x='lock:shard.maintenance')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    def good(self):\n"
            "        with self._maintenance_lock:\n"
            "            self.x += 1\n"
            "    def bad(self):\n"
            "        self.x += 1\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC502"]
        assert findings[0].key == "unlocked:C.x:bad"

    def test_locked_by_decorator_grants_lock_domain(self):
        src = (
            "@owned_by(x='lock:shard.merge')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    @locked_by('shard.merge')\n"
            "    def f(self):\n"
            "        self.x = 1\n"
        )
        assert races.check_file("m.py", src) == []

    def test_read_locked_is_not_a_writer_context(self):
        src = (
            "@owned_by(x='lock:shard.maintenance')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    def reader(self):\n"
            "        with self._maintenance_lock.read_locked():\n"
            "            self.x = 1\n"
            "    def writer(self):\n"
            "        with self._maintenance_lock.write_locked():\n"
            "            self.x = 2\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC502"]
        assert findings[0].key == "unlocked:C.x:reader"

    def test_container_mutation_outside_lock_flagged(self):
        src = (
            "@owned_by(items='lock:shard.maintenance')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.items = []\n"
            "    def f(self):\n"
            "        self.items.append(1)\n"
            "    def g(self):\n"
            "        self.items[0] = 1\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC503", "RC503"]
        assert {f.key for f in findings} == {"unlocked:C.items:f", "unlocked:C.items:g"}

    def test_nested_store_through_attribute_flagged(self):
        src = (
            "@owned_by(session='lock:shard.maintenance')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.session = object()\n"
            "    def f(self):\n"
            "        self.session.groups = []\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC503"]

    def test_confined_writer_table_declaration(self):
        decl = OwnershipDecl(
            module="m.py",
            cls="C",
            attrs={"x": "confined:worker"},
            confined_writers={"worker": ("loop",)},
        )
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    def loop(self):\n"
            "        self.x = 1\n"
            "    def other(self):\n"
            "        self.x = 2\n"
        )
        findings = races.check_file("m.py", src, decls=[decl])
        assert codes(findings) == ["RC502"]
        assert findings[0].key == "unconfined:C.x:other"

    def test_extra_init_methods_accepted(self):
        decl = OwnershipDecl(
            module="m.py",
            cls="C",
            attrs={"x": "init-only"},
            init_methods=("__init__", "prepare"),
        )
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    def prepare(self):\n"
            "        self.x = 1\n"
        )
        assert races.check_file("m.py", src, decls=[decl]) == []

    def test_inline_owner_marker_declares_attribute(self):
        src = (
            "@owned_by(x='init-only')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "        self.y = {}  # analyze: owner=init-only\n"
        )
        assert races.check_file("m.py", src) == []

    def test_writer_context_marker_accepted(self):
        src = (
            "@owned_by(x='lock:shard.maintenance')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    def f(self):\n"
            "        # analyze: writer-context -- single-writer merge thread\n"
            "        self.x = 1\n"
        )
        assert races.check_file("m.py", src) == []

    def test_view_mutation_flagged(self):
        src = (
            "def f(view):\n"
            "    view.groups.append(1)\n"
            "def g(published_view):\n"
            "    published_view.epoch = 2\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC504", "RC504"]

    def test_self_rooted_view_attr_not_rc504(self):
        # instance state is the class-domain scan's job, not RC504's
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        self.view.x = 1\n"
        )
        assert races.check_file("m.py", src) == []

    def test_stale_attribute_declaration_flagged(self):
        src = (
            "@owned_by(x='init-only', z='init-only')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
        )
        findings = races.check_file("m.py", src)
        assert codes(findings) == ["RC505"]
        assert findings[0].key == "stale-attr:C.z"

    def test_stale_class_declaration_flagged(self):
        decl = OwnershipDecl(module="m.py", cls="Gone", attrs={"x": "init-only"})
        findings = races.check_file("m.py", "class Other:\n    pass\n", decls=[decl])
        assert codes(findings) == ["RC505"]
        assert findings[0].key == "stale-class:Gone"

    def test_method_call_through_return_value_not_a_write(self):
        # self.shard(name).insert(...) mutates a *return value*, not
        # attribute state; `insert` collides with the list mutator.
        src = (
            "@owned_by(x='init-only')\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "    def f(self, name):\n"
            "        return self.shard(name).insert(1)\n"
        )
        assert races.check_file("m.py", src) == []

    def test_ownership_table_domains_all_valid(self):
        for decl in OWNERSHIP_DECLS:
            for attr, domain in decl.attrs.items():
                assert races._valid_domain(domain), (decl.cls, attr, domain)
            for label in decl.confined_writers:
                assert f"confined:{label}" in decl.attrs.values(), (decl.cls, label)


# ---------------------------------------------------------------------------
# determinism lint (DT6xx)
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_unseeded_default_rng_flagged(self):
        findings = determinism.check_file("m.py", "rng = default_rng()\n")
        assert codes(findings) == ["DT601"]
        assert findings[0].key == "unseeded:default_rng"

    def test_seeded_default_rng_accepted(self):
        assert determinism.check_file("m.py", "rng = default_rng(13)\n") == []
        assert determinism.check_file("m.py", "rng = default_rng(seed=13)\n") == []

    def test_unseeded_random_instance_flagged(self):
        findings = determinism.check_file("m.py", "r = random.Random()\n")
        assert codes(findings) == ["DT601"]
        assert determinism.check_file("m.py", "r = random.Random(3)\n") == []

    def test_global_random_draw_flagged(self):
        findings = determinism.check_file("m.py", "x = random.choice(items)\n")
        assert codes(findings) == ["DT601"]
        assert findings[0].key == "global-rng:random.choice"
        # a seeded instance's draw is fine
        assert determinism.check_file("m.py", "x = rng.choice(items)\n") == []

    def test_numpy_global_draw_flagged(self):
        findings = determinism.check_file("m.py", "np.random.shuffle(xs)\n")
        assert codes(findings) == ["DT601"]
        assert findings[0].key == "global-rng:np.random.shuffle"

    def test_set_iteration_flagged(self):
        findings = determinism.check_file(
            "m.py", "for tag in set(tags):\n    emit(tag)\n"
        )
        assert codes(findings) == ["DT602"]

    def test_sorted_set_iteration_accepted(self):
        src = "for tag in sorted(set(tags)):\n    emit(tag)\n"
        assert determinism.check_file("m.py", src) == []

    def test_set_fed_to_consumer_flagged(self):
        assert codes(determinism.check_file("m.py", "xs = list({1, 2})\n")) == ["DT602"]
        assert codes(
            determinism.check_file("m.py", "s = ','.join({str(x) for x in xs})\n")
        ) == ["DT602"]

    def test_dict_iteration_not_flagged(self):
        assert determinism.check_file("m.py", "for k in mapping:\n    pass\n") == []

    def test_wall_clock_on_deterministic_path_flagged(self):
        findings = determinism.check_file(
            "src/repro/core/m.py", "stamp = time.time()\n"
        )
        assert codes(findings) == ["DT603"]

    def test_wall_clock_outside_deterministic_paths_accepted(self):
        src = "stamp = time.time()\n"
        assert determinism.check_file("src/repro/serving/m.py", src) == []

    def test_monotonic_clock_accepted_everywhere(self):
        src = "begin = time.monotonic()\nend = time.perf_counter()\n"
        assert determinism.check_file("src/repro/core/m.py", src) == []

    def test_datetime_now_on_deterministic_path_flagged(self):
        findings = determinism.check_file(
            "src/repro/core/m.py", "when = datetime.now()\n"
        )
        assert codes(findings) == ["DT603"]

    def test_id_ordering_flagged(self):
        findings = determinism.check_file(
            "m.py", "ordered = sorted(groups, key=lambda g: id(g))\n"
        )
        assert codes(findings) == ["DT604"]
        assert determinism.check_file("m.py", "ordered = sorted(xs, key=len)\n") == []

    def test_marker_suppresses_same_line(self):
        src = "rng = default_rng()  # analyze: nondeterminism-ok(test-only jitter)\n"
        assert determinism.check_file("m.py", src) == []

    def test_marker_suppresses_preceding_line(self):
        src = (
            "# analyze: nondeterminism-ok(display order, never serialized)\n"
            "for tag in set(tags):\n"
            "    emit(tag)\n"
        )
        assert determinism.check_file("m.py", src) == []


# ---------------------------------------------------------------------------
# CLI, explanations, baseline, and the repo itself
# ---------------------------------------------------------------------------


def _all_emittable_codes():
    """Every code the checkers can emit, scraped from their sources."""
    import re

    found = set()
    for module in (locks, order, contracts, writers, doclinks, races, determinism):
        source = Path(module.__file__).read_text(encoding="utf-8")
        found.update(re.findall(r'"((?:LD|LH|WC|WR|DL|RC|DT)\d{3})"', source))
    return found


class TestSuite:
    def test_every_code_has_an_explanation(self):
        emittable = _all_emittable_codes()
        assert emittable  # the scrape itself must work
        missing = emittable - set(EXPLANATIONS)
        assert not missing, f"codes without --explain entries: {sorted(missing)}"

    def test_no_orphan_explanations(self):
        orphans = set(EXPLANATIONS) - _all_emittable_codes()
        assert not orphans, f"explained codes nothing can emit: {sorted(orphans)}"

    def test_explain_cli(self, capsys):
        assert main(["--explain", "LD102"]) == 0
        out = capsys.readouterr().out
        assert "fast" in out and "LD102" in out
        assert main(["--explain", "XX999"]) == 2

    def test_repo_is_clean_under_baseline(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0

    def test_baseline_entries_all_fire(self):
        """Every baseline entry matches a real finding (none are stale)."""
        from tools.analyze.core import Project

        project = Project(REPO_ROOT)
        findings = []
        for check in CHECKS.values():
            findings.extend(check(project))
        baseline = Baseline.load(REPO_ROOT / "tools/analyze/baseline.json")
        _, _, stale = baseline.split(findings)
        assert stale == []

    def test_baseline_justifications_present(self):
        payload = json.loads(
            (REPO_ROOT / "tools/analyze/baseline.json").read_text()
        )
        for entry in payload["findings"]:
            assert entry["justification"].strip(), entry

    def test_stale_baseline_entry_fails(self, tmp_path, capsys):
        bogus = {
            "findings": [
                {
                    "code": "DL501",
                    "path": "README.md",
                    "key": "broken:NO_SUCH.md",
                    "justification": "stale on purpose",
                },
                {
                    # different family: must NOT count as stale when only
                    # doclinks runs
                    "code": "LD102",
                    "path": "src/repro/serving/server.py",
                    "key": "server.registry:never_happens",
                    "justification": "wrong family",
                },
            ]
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(bogus))
        rc = main(
            ["--root", str(REPO_ROOT), "--check", "doclinks", "--baseline", str(path)]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "stale" in out
        assert "DL501" in out and "LD102" not in out

    def test_prune_baseline_rewrites_file(self, tmp_path, capsys):
        bogus = {
            "findings": [
                {
                    "code": "DL501",
                    "path": "README.md",
                    "key": "broken:NO_SUCH.md",
                    "justification": "stale on purpose",
                }
            ]
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(bogus))
        rc = main(
            [
                "--root", str(REPO_ROOT), "--check", "doclinks",
                "--baseline", str(path), "--prune-baseline",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert json.loads(path.read_text()) == {"findings": []}
        # the rewritten file is a valid baseline for the next run
        assert main(
            ["--root", str(REPO_ROOT), "--check", "doclinks", "--baseline", str(path)]
        ) == 0

    def test_prune_baseline_does_not_mask_new_findings(self, tmp_path, capsys):
        root = tmp_path / "repo"
        root.mkdir()
        (root / "README.md").write_text("[gone](MISSING.md)\n")
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "findings": [
                        {
                            "code": "DL501",
                            "path": "README.md",
                            "key": "broken:OTHER.md",
                            "justification": "stale on purpose",
                        }
                    ]
                }
            )
        )
        rc = main(
            [
                "--root", str(root), "--check", "doclinks",
                "--baseline", str(path), "--prune-baseline",
            ]
        )
        assert rc == 1  # the new DL501 still fails the run...
        assert json.loads(path.read_text()) == {"findings": []}  # ...but stale is gone

    def test_ci_run_parses_each_file_once(self):
        from tools.analyze.core import Project

        project = Project(REPO_ROOT)
        for check in CHECKS.values():
            check(project)
        first = project.parse_count
        assert first > 0
        for check in CHECKS.values():
            check(project)
        assert project.parse_count == first

    def test_check_selection(self, capsys):
        assert main(["--root", str(REPO_ROOT), "--check", "doclinks"]) == 0
        out = capsys.readouterr().out
        assert "doclinks" in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.analyze", "--list"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "locks" in proc.stdout and "LD101" in proc.stdout

    def test_doc_links_shim_still_works_and_warns(self):
        proc = subprocess.run(
            [sys.executable, "tools/check_doc_links.py"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "DeprecationWarning" in proc.stderr
        assert "tools.analyze --check doclinks" in proc.stderr
