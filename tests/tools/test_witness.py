"""Unit tests for the runtime lock-order witness
(``repro/core/witness.py``).

These tests drive privately-constructed :class:`LockOrderWitness`
instances, never the process-wide singleton, so an armed
``TAGDM_LOCK_WITNESS`` session (the chaos/HTAP CI jobs run the whole
suite with it set) does not see the deliberate inversions seeded here.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.witness import (
    LOCK_HIERARCHY,
    WITNESS_ENV,
    LockOrderViolation,
    LockOrderWitness,
    locked_by,
    named_lock,
    named_rlock,
)

A, B = "shard.submit", "shard.stats"  # A ranks above (outside) B


def _run_in_thread(fn):
    error = []

    def target():
        try:
            fn()
        except BaseException as exc:  # pragma: no cover - surfaced below
            error.append(exc)

    thread = threading.Thread(target=target)
    thread.start()
    thread.join()
    if error:
        raise error[0]


class TestWitnessCore:
    def test_ordered_acquisition_is_clean(self):
        witness = LockOrderWitness()
        witness.note_acquire(A)
        witness.note_acquire(B)
        witness.note_release(B)
        witness.note_release(A)
        assert witness.inversions() == []
        witness.assert_clean()

    def test_seeded_inversion_reports_both_stacks(self):
        witness = LockOrderWitness()
        # thread 1: A -> B (the canonical order)
        witness.note_acquire(A)
        witness.note_acquire(B)
        witness.note_release(B)
        witness.note_release(A)

        # thread 2: B -> A (the inversion)
        def invert():
            witness.note_acquire(B)
            witness.note_acquire(A)
            witness.note_release(A)
            witness.note_release(B)

        _run_in_thread(invert)

        reports = witness.inversions()
        # one rank violation (B held while acquiring A) and one A<->B cycle
        assert len(reports) == 2
        rank_report = next(r for r in reports if "rank violation" in r)
        assert f"{B!r}" in rank_report and f"{A!r}" in rank_report
        # both sides carry their first-observation stack trace
        assert "reverse edge" in rank_report
        assert rank_report.count("test_witness.py") >= 2
        cycle_report = next(r for r in reports if "cycle" in r)
        assert A in cycle_report and B in cycle_report
        with pytest.raises(LockOrderViolation):
            witness.assert_clean()

    def test_cycle_detection_covers_undeclared_names(self):
        witness = LockOrderWitness()
        witness.note_acquire("custom.x")
        witness.note_acquire("custom.y")
        witness.note_release("custom.y")
        witness.note_release("custom.x")

        def invert():
            witness.note_acquire("custom.y")
            witness.note_acquire("custom.x")
            witness.note_release("custom.x")
            witness.note_release("custom.y")

        _run_in_thread(invert)
        reports = witness.inversions()
        assert len(reports) == 1  # no ranks, so only the cycle fires
        assert "cycle" in reports[0]

    def test_reentrant_holds_add_no_edges(self):
        witness = LockOrderWitness()
        witness.note_acquire(A)
        witness.note_acquire(A)  # rlock reentry
        witness.note_acquire(B)
        witness.note_release(B)
        witness.note_release(A)
        witness.note_release(A)
        assert set(witness.edges()) == {(A, B)}
        witness.assert_clean()

    def test_per_thread_stacks_are_independent(self):
        witness = LockOrderWitness()
        witness.note_acquire(A)  # held on the main thread only

        def other():
            witness.note_acquire(B)  # must NOT see A as held
            witness.note_release(B)

        _run_in_thread(other)
        witness.note_release(A)
        assert witness.edges() == {}

    def test_reset_drops_edges(self):
        witness = LockOrderWitness()
        witness.note_acquire(B)
        witness.note_acquire(A)
        witness.note_release(A)
        witness.note_release(B)
        assert witness.inversions()
        witness.reset()
        assert witness.inversions() == []


class TestFactories:
    def test_disabled_factories_return_plain_primitives(self, monkeypatch):
        monkeypatch.delenv(WITNESS_ENV, raising=False)
        lock = named_lock(A)
        assert type(lock) is type(threading.Lock())
        rlock = named_rlock(A)
        assert type(rlock) is type(threading.RLock())

    def test_zero_and_false_disable(self, monkeypatch):
        for value in ("0", "false", ""):
            monkeypatch.setenv(WITNESS_ENV, value)
            assert type(named_lock(A)) is type(threading.Lock())

    def test_enabled_factory_wraps_and_records(self, monkeypatch):
        monkeypatch.setenv(WITNESS_ENV, "1")
        lock = named_lock("custom.wrapped")
        assert lock.__class__.__name__ == "_WitnessedLock"
        witness = lock._witness
        with lock:
            assert witness.held_by_current_thread("custom.wrapped")
            assert lock.locked()
        assert not witness.held_by_current_thread("custom.wrapped")
        assert not lock.locked()

    def test_wrapped_nonblocking_acquire(self, monkeypatch):
        monkeypatch.setenv(WITNESS_ENV, "1")
        lock = named_lock("custom.probe")
        assert lock.acquire(blocking=False) is True
        assert lock.acquire(blocking=False) is False  # held; no double note
        assert lock._witness.held_by_current_thread("custom.probe")
        lock.release()


class TestLockedBy:
    def test_decorator_attaches_metadata_without_wrapping(self):
        def mutate(self):
            return 42

        tagged = locked_by("shard.merge")(mutate)
        assert tagged is mutate
        assert tagged.__locked_by__ == ("shard.merge",)

    def test_hierarchy_names_are_unique(self):
        assert len(set(LOCK_HIERARCHY)) == len(LOCK_HIERARCHY)
