"""Repo-native static analysis: lock discipline (LD1xx), deadlock
hierarchy (LH2xx), wire-contract drift (WC3xx), concurrency-API
hygiene (WR4xx) and documentation links (DL5xx).

Run ``python -m tools.analyze`` from the repository root; see
TOOLING.md for the full check catalogue and the baseline workflow.
"""
