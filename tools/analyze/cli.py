"""Command-line entry point: ``python -m tools.analyze``.

Exit code 0 when every finding is covered by the committed baseline
(``tools/analyze/baseline.json``), 1 otherwise.  Stale baseline entries
(grandfathered findings that no longer fire) also fail the run -- a
fixed finding must leave the baseline in the same change.

Usage::

    python -m tools.analyze                    # all checks
    python -m tools.analyze --check locks order
    python -m tools.analyze --explain LD102
    python -m tools.analyze --list             # available checks/codes
    python -m tools.analyze --no-baseline      # raw findings, no filter
    python -m tools.analyze --prune-baseline   # drop stale baseline entries
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List

from tools.analyze import (
    contracts,
    determinism,
    doclinks,
    locks,
    order,
    races,
    writers,
)
from tools.analyze.core import Baseline, Finding, Project
from tools.analyze.explain import EXPLANATIONS

__all__ = ["CHECKS", "main"]

CHECKS: Dict[str, Callable[[Project], List[Finding]]] = {
    "locks": locks.run,           # LD1xx  lock discipline
    "order": order.run,           # LH2xx  deadlock hierarchy
    "contracts": contracts.run,   # WC3xx  wire-contract drift
    "writers": writers.run,       # WR4xx  concurrency-API hygiene
    "doclinks": doclinks.run,     # DL5xx  markdown link integrity
    "races": races.run,           # RC5xx  shared-state ownership
    "determinism": determinism.run,  # DT6xx  determinism lint
}

_DEFAULT_ROOT = Path(__file__).resolve().parent.parent.parent
_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="repo-native static analysis: lock discipline, "
        "deadlock hierarchy, wire-contract drift, writer hygiene, doc "
        "links, shared-state ownership, determinism lint",
    )
    parser.add_argument(
        "--check",
        nargs="+",
        choices=sorted(CHECKS),
        default=sorted(CHECKS),
        help="run only these check families (default: all)",
    )
    parser.add_argument(
        "--explain", metavar="CODE", help="explain a finding code and exit"
    )
    parser.add_argument(
        "--list", action="store_true", help="list checks and codes, then exit"
    )
    parser.add_argument(
        "--root", type=Path, default=_DEFAULT_ROOT, help="repository root"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=_DEFAULT_BASELINE,
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding; ignore the baseline",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline file dropping entries that no longer "
        "match any finding (new findings still fail the run)",
    )
    args = parser.parse_args(argv)

    if args.explain:
        code = args.explain.upper()
        text = EXPLANATIONS.get(code)
        if text is None:
            print(f"unknown code {code!r}; known: {', '.join(sorted(EXPLANATIONS))}")
            return 2
        print(f"{code}: {text}")
        return 0

    if args.list:
        for name in sorted(CHECKS):
            print(name)
        print()
        for code in sorted(EXPLANATIONS):
            print(f"{code}  {EXPLANATIONS[code].split('.')[0]}.")
        return 0

    project = Project(args.root)
    findings: List[Finding] = []
    for name in args.check:
        findings.extend(CHECKS[name](project))
    findings.sort(key=lambda f: (f.path, f.line, f.code))

    baseline = (
        Baseline() if args.no_baseline else Baseline.load(args.baseline)
    )
    new, baselined, stale = baseline.split(findings)

    for finding in new:
        print(finding.render())
    if baselined:
        print(f"({len(baselined)} baselined finding(s) suppressed; "
              f"see {args.baseline.name})")
    # A baseline entry is only stale when its check family actually ran.
    prefix_to_check = {
        "LD": "locks", "LH": "order", "WC": "contracts",
        "WR": "writers", "DL": "doclinks", "RC": "races",
        "DT": "determinism",
    }
    stale = [
        entry
        for entry in stale
        if prefix_to_check.get(entry["code"][:2]) in args.check
    ]
    failed = bool(new)
    if args.prune_baseline and not args.no_baseline and stale:
        stale_keys = {(e["code"], e["path"], e["key"]) for e in stale}
        kept = [
            entry
            for entry in baseline.entries
            if (entry["code"], entry["path"], entry["key"]) not in stale_keys
        ]
        args.baseline.write_text(
            json.dumps({"findings": kept}, indent=2) + "\n", encoding="utf-8"
        )
        print(
            f"pruned {len(stale)} stale baseline "
            f"entr{'y' if len(stale) == 1 else 'ies'} from "
            f"{args.baseline.name} ({len(kept)} kept)"
        )
        stale = []
    if stale and not args.no_baseline:
        failed = True
        print(
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
            "(finding no longer fires -- remove from the baseline):"
        )
        for entry in stale:
            print(f"  {entry['code']} {entry['path']} [{entry['key']}]")
    if not failed:
        checked = ", ".join(args.check)
        print(f"analyze: clean ({checked})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
