"""Command-line entry point: ``python -m tools.analyze``.

Exit code 0 when every finding is covered by the committed baseline
(``tools/analyze/baseline.json``), 1 otherwise.  Stale baseline entries
(grandfathered findings that no longer fire) also fail the run -- a
fixed finding must leave the baseline in the same change.

Usage::

    python -m tools.analyze                    # all checks
    python -m tools.analyze --check locks order
    python -m tools.analyze --explain LD102
    python -m tools.analyze --list             # available checks/codes
    python -m tools.analyze --no-baseline      # raw findings, no filter
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List

from tools.analyze import contracts, doclinks, locks, order, writers
from tools.analyze.core import Baseline, Finding, Project
from tools.analyze.explain import EXPLANATIONS

__all__ = ["CHECKS", "main"]

CHECKS: Dict[str, Callable[[Project], List[Finding]]] = {
    "locks": locks.run,         # LD1xx  lock discipline
    "order": order.run,         # LH2xx  deadlock hierarchy
    "contracts": contracts.run, # WC3xx  wire-contract drift
    "writers": writers.run,     # WR4xx  concurrency-API hygiene
    "doclinks": doclinks.run,   # DL5xx  markdown link integrity
}

_DEFAULT_ROOT = Path(__file__).resolve().parent.parent.parent
_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="repo-native static analysis: lock discipline, "
        "deadlock hierarchy, wire-contract drift, writer hygiene, doc links",
    )
    parser.add_argument(
        "--check",
        nargs="+",
        choices=sorted(CHECKS),
        default=sorted(CHECKS),
        help="run only these check families (default: all)",
    )
    parser.add_argument(
        "--explain", metavar="CODE", help="explain a finding code and exit"
    )
    parser.add_argument(
        "--list", action="store_true", help="list checks and codes, then exit"
    )
    parser.add_argument(
        "--root", type=Path, default=_DEFAULT_ROOT, help="repository root"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=_DEFAULT_BASELINE,
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding; ignore the baseline",
    )
    args = parser.parse_args(argv)

    if args.explain:
        code = args.explain.upper()
        text = EXPLANATIONS.get(code)
        if text is None:
            print(f"unknown code {code!r}; known: {', '.join(sorted(EXPLANATIONS))}")
            return 2
        print(f"{code}: {text}")
        return 0

    if args.list:
        for name in sorted(CHECKS):
            print(name)
        print()
        for code in sorted(EXPLANATIONS):
            print(f"{code}  {EXPLANATIONS[code].split('.')[0]}.")
        return 0

    project = Project(args.root)
    findings: List[Finding] = []
    for name in args.check:
        findings.extend(CHECKS[name](project))
    findings.sort(key=lambda f: (f.path, f.line, f.code))

    baseline = (
        Baseline() if args.no_baseline else Baseline.load(args.baseline)
    )
    new, baselined, stale = baseline.split(findings)

    for finding in new:
        print(finding.render())
    if baselined:
        print(f"({len(baselined)} baselined finding(s) suppressed; "
              f"see {args.baseline.name})")
    # A baseline entry is only stale when its check family actually ran.
    prefix_to_check = {
        "LD": "locks", "LH": "order", "WC": "contracts",
        "WR": "writers", "DL": "doclinks",
    }
    stale = [
        entry
        for entry in stale
        if prefix_to_check.get(entry["code"][:2]) in args.check
    ]
    failed = bool(new)
    if stale and not args.no_baseline:
        failed = True
        print(
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
            "(finding no longer fires -- remove from the baseline):"
        )
        for entry in stale:
            print(f"  {entry['code']} {entry['path']} [{entry['key']}]")
    if not failed:
        checked = ", ".join(args.check)
        print(f"analyze: clean ({checked})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
