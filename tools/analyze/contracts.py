"""Wire-contract drift checks (WC3xx).

Each contract has exactly one source-of-truth table in this module.
The checks then verify that the *code* and the *docs* both match it:

* error taxonomy       -- :data:`ERROR_TAXONOMY` vs
  ``src/repro/api/errors.py`` (WC301) vs the API.md error table (WC302)
* fault points         -- :data:`FAULT_POINTS` vs every
  ``plan.fire("...")`` literal in src (WC303), the SERVING.md drill
  table (WC304) and every ``FaultRule("...")`` literal in tests (WC305)
* shard stats keys     -- :data:`STATS_KEYS` vs the literal dict in
  ``CorpusShard.stats()`` (WC306) vs the SERVING.md stats table (WC307)
* algorithm registry   -- :data:`ALGORITHMS` vs the
  ``@register_algorithm`` classes (WC308) vs API.md (WC309)

Plus a cross-cutting rule folded into WC304: any backticked
``prefix.word`` token in the serving docs that *looks* like a fault
point or lock name must actually be one -- stale names in prose are
drift too.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.analyze.core import (
    Finding,
    Project,
    backtick_tokens,
    parse_markdown_table,
    strip_backticks,
)
from tools.analyze.hierarchy import LOCK_ORDER

__all__ = [
    "ALGORITHMS",
    "ERROR_TAXONOMY",
    "FAULT_POINTS",
    "STATS_KEYS",
    "run",
]

ERRORS_MODULE = "src/repro/api/errors.py"
SHARDS_MODULE = "src/repro/serving/shards.py"
ALGORITHM_MODULES = (
    "src/repro/algorithms/exact.py",
    "src/repro/algorithms/sm_lsh.py",
    "src/repro/algorithms/dv_fdp.py",
)
API_DOC = "API.md"
SERVING_DOC = "SERVING.md"
DEPLOYMENT_DOC = "DEPLOYMENT.md"

#: class name -> (wire code, HTTP status, serialised on the wire?).
#: ``wire=False`` marks client-side errors that never cross the wire and
#: therefore must NOT be in ``_ERRORS_BY_CODE`` (their HTTP column in
#: API.md is em-dash).
ERROR_TAXONOMY: Dict[str, Tuple[str, int, bool]] = {
    "ApiError": ("internal", 500, True),
    "SpecValidationError": ("validation", 422, True),
    "UnknownCorpusError": ("unknown-corpus", 404, True),
    "UnknownRouteError": ("unknown-route", 404, True),
    "CapabilityMismatchError": ("capability-mismatch", 409, True),
    "ConnectionFailedError": ("connection-failed", 503, False),
    "UnknownSubscriptionError": ("unknown-subscription", 404, True),
    "SubscriptionExistsError": ("subscription-exists", 409, True),
    "OverloadedError": ("overloaded", 429, True),
    "WorkerUnavailableError": ("worker-unavailable", 503, True),
    "SolveTimeoutError": ("timeout", 504, True),
}

#: Every fault-injection point a ``FaultPlan`` can arm, in the order the
#: SERVING.md drill table documents them.
FAULT_POINTS: Tuple[str, ...] = (
    "shard.apply",
    "shard.solve",
    "merge.pre_fold",
    "merge.post_fold",
    "insert.pre_apply",
    "insert.applied",
    "http.pre_write",
    "http.post_write",
    "snapshot.write",
    "pool.pre_send",
    "subs.pre_eval",
    "subs.post_eval",
    "subs.pre_notify",
)

#: Exactly the keys ``CorpusShard.stats()`` returns (and /healthz and
#: ``/corpora/<name>/stats`` republish).
STATS_KEYS: Tuple[str, ...] = (
    "name",
    "actions",
    "groups",
    "queue_depth",
    "epoch",
    "delta_size",
    "merge_lag_s",
    "pinned_epochs",
    "pinned_solves",
    "snapshot_rotations",
    "snapshots_written",
    "last_rotation_at",
    "start_mode",
    "replayed_actions",
    "subs_active",
    "subs_evaluations",
    "subs_notifications",
    "subs_suppressed",
    "subs_backlog",
    "subs_last_error",
    "inserts_served",
    "solves_served",
    "inflight_solves",
    "inserts_shed",
    "solves_shed",
    "dedup_hits",
    "merge_count",
    "merge_failures",
    "last_merge_error",
    "last_rotation_error",
)

#: The algorithm registry (``@register_algorithm`` classes by their
#: ``name`` attribute).
ALGORITHMS: Tuple[str, ...] = (
    "exact",
    "sm-lsh",
    "sm-lsh-fi",
    "sm-lsh-fo",
    "dv-fdp",
    "dv-fdp-fi",
    "dv-fdp-fo",
)

#: Backticked ``prefix.word`` tokens in docs that must name a real fault
#: point or lock (prose drift detector).
_DOTTED_TOKEN = re.compile(
    r"^(shard|merge|insert|http|snapshot|pool|fleet|server|store|view"
    r"|placement|router|client|breaker|budget|faultplan|subs)\.\w+$"
)

#: Dotted doc tokens that are legitimate but are neither fault points
#: nor locks (public API methods referenced in prose).
_DOC_TOKEN_ALLOWLIST = {
    "client.solve_page",
    "client.solve_stream",
}


# ---------------------------------------------------------------------------
# WC301 / WC302: error taxonomy
# ---------------------------------------------------------------------------


def check_errors_module(
    source: str,
    rel_path: str = ERRORS_MODULE,
    tree: Optional[ast.Module] = None,
) -> List[Finding]:
    """WC301: the errors module must define exactly the taxonomy."""
    findings: List[Finding] = []
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    seen: Dict[str, Tuple[Optional[str], Optional[int], int]] = {}
    registry: Optional[Set[str]] = None
    registry_line = 1
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
            if node.name != "ApiError" and "ApiError" not in bases:
                continue
            code = status = None
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Constant
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            if target.id == "code":
                                code = stmt.value.value
                            elif target.id == "status":
                                status = stmt.value.value
            seen[node.name] = (code, status, node.lineno)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if not any(
                isinstance(t, ast.Name) and t.id == "_ERRORS_BY_CODE"
                for t in targets
            ):
                continue
            registry_line = node.lineno
            value = node.value
            if isinstance(value, ast.DictComp):
                for comp in value.generators:
                    if isinstance(comp.iter, (ast.Tuple, ast.List)):
                        registry = {
                            elt.id
                            for elt in comp.iter.elts
                            if isinstance(elt, ast.Name)
                        }
            elif isinstance(value, ast.Dict):
                registry = {
                    v.id for v in value.values if isinstance(v, ast.Name)
                }
    for cls_name, (code, status, wire) in sorted(ERROR_TAXONOMY.items()):
        if cls_name not in seen:
            findings.append(
                Finding(
                    "WC301", rel_path, 1,
                    f"taxonomy class {cls_name} is missing from the errors "
                    "module",
                    key=f"missing-class:{cls_name}",
                )
            )
            continue
        got_code, got_status, line = seen[cls_name]
        if cls_name == "ApiError":
            # base-class defaults live in the class body too
            got_code = got_code or "internal"
            got_status = got_status or 500
        if got_code != code or got_status != status:
            findings.append(
                Finding(
                    "WC301", rel_path, line,
                    f"{cls_name} declares code={got_code!r} status="
                    f"{got_status!r}; the taxonomy says ({code!r}, {status})",
                    key=f"class-drift:{cls_name}",
                )
            )
    for cls_name, (_, _, line) in sorted(seen.items()):
        if cls_name not in ERROR_TAXONOMY:
            findings.append(
                Finding(
                    "WC301", rel_path, line,
                    f"ApiError subclass {cls_name} is not in the "
                    "ERROR_TAXONOMY table (add it there AND to the API.md "
                    "error table)",
                    key=f"unregistered-class:{cls_name}",
                )
            )
    wire_classes = {n for n, (_, _, wire) in ERROR_TAXONOMY.items() if wire}
    if registry is None:
        findings.append(
            Finding(
                "WC301", rel_path, registry_line,
                "could not parse _ERRORS_BY_CODE", key="registry-unparsed",
            )
        )
    elif registry != wire_classes:
        missing = sorted(wire_classes - registry)
        extra = sorted(registry - wire_classes)
        findings.append(
            Finding(
                "WC301", rel_path, registry_line,
                f"_ERRORS_BY_CODE drift: missing {missing}, extra {extra} "
                "(client-side errors must stay out; wire errors must be in)",
                key="registry-drift",
            )
        )
    return findings


def check_error_doc(text: str, rel_path: str = API_DOC) -> List[Finding]:
    """WC302: the API.md error table lists exactly the taxonomy."""
    findings: List[Finding] = []
    table = parse_markdown_table(text, ("Class", "code", "HTTP"))
    if table is None:
        return [
            Finding(
                "WC302", rel_path, 1,
                "no error table with Class/code/HTTP columns found",
                key="missing-table",
            )
        ]
    header_line, headers, rows = table
    lowered = [h.lower() for h in headers]
    col = {
        "class": next(i for i, h in enumerate(lowered) if "class" in h),
        "code": next(i for i, h in enumerate(lowered) if "code" in h),
        "http": next(i for i, h in enumerate(lowered) if "http" in h),
    }
    documented: Set[str] = set()
    for line, cells in rows:
        cls_name = strip_backticks(cells[col["class"]])
        documented.add(cls_name)
        if cls_name not in ERROR_TAXONOMY:
            findings.append(
                Finding(
                    "WC302", rel_path, line,
                    f"documented error class {cls_name!r} is not in the "
                    "taxonomy",
                    key=f"unknown-class:{cls_name}",
                )
            )
            continue
        code, status, wire = ERROR_TAXONOMY[cls_name]
        doc_code = strip_backticks(cells[col["code"]])
        doc_http = cells[col["http"]].strip()
        if doc_code != code:
            findings.append(
                Finding(
                    "WC302", rel_path, line,
                    f"{cls_name} documented with code {doc_code!r}; the "
                    f"taxonomy says {code!r}",
                    key=f"code-drift:{cls_name}",
                )
            )
        expected_http = {str(status)} if wire else {"—", "--", "-", str(status)}
        if doc_http not in expected_http:
            findings.append(
                Finding(
                    "WC302", rel_path, line,
                    f"{cls_name} documented with HTTP {doc_http!r}; expected "
                    f"{status}" + ("" if wire else " or an em-dash (client-side)"),
                    key=f"status-drift:{cls_name}",
                )
            )
    for cls_name in sorted(set(ERROR_TAXONOMY) - documented):
        findings.append(
            Finding(
                "WC302", rel_path, header_line,
                f"taxonomy class {cls_name} has no row in the error table",
                key=f"undocumented-class:{cls_name}",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# WC303 / WC304 / WC305: fault points
# ---------------------------------------------------------------------------


def _fire_literals(
    source: str, rel_path: str, tree: Optional[ast.Module] = None
) -> List[Tuple[int, str]]:
    literals: List[Tuple[int, str]] = []
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "fire"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            literals.append((node.lineno, node.args[0].value))
    return literals


def check_fire_sites(
    source: str, rel_path: str, tree: Optional[ast.Module] = None
) -> List[Finding]:
    """WC303: every ``fire("...")`` literal in src is a declared point."""
    findings: List[Finding] = []
    for line, point in _fire_literals(source, rel_path, tree=tree):
        if point not in FAULT_POINTS:
            findings.append(
                Finding(
                    "WC303", rel_path, line,
                    f"fire({point!r}) is not a declared fault point "
                    "(tools/analyze/contracts.FAULT_POINTS)",
                    key=f"unknown-point:{point}",
                )
            )
    return findings


def check_fault_doc(text: str, rel_path: str = SERVING_DOC) -> List[Finding]:
    """WC304: the SERVING.md drill table lists exactly FAULT_POINTS, and
    no doc token *looks* like a point/lock without being one."""
    findings: List[Finding] = []
    table = parse_markdown_table(text, ("Point", "Fires"))
    if table is None:
        findings.append(
            Finding(
                "WC304", rel_path, 1,
                "no fault-point table with Point/Fires columns found",
                key="missing-table",
            )
        )
        return findings
    header_line, _, rows = table
    documented = []
    for line, cells in rows:
        point = strip_backticks(cells[0])
        documented.append(point)
        if point not in FAULT_POINTS:
            findings.append(
                Finding(
                    "WC304", rel_path, line,
                    f"documented fault point {point!r} is not declared",
                    key=f"unknown-point:{point}",
                )
            )
    for point in FAULT_POINTS:
        if point not in documented:
            findings.append(
                Finding(
                    "WC304", rel_path, header_line,
                    f"fault point {point!r} has no row in the drill table",
                    key=f"undocumented-point:{point}",
                )
            )
    return findings


def check_doc_tokens(text: str, rel_path: str) -> List[Finding]:
    """WC304 (prose rule): dotted backticked tokens must be real."""
    findings: List[Finding] = []
    known = set(FAULT_POINTS) | set(LOCK_ORDER) | _DOC_TOKEN_ALLOWLIST
    for line, token in backtick_tokens(text):
        if _DOTTED_TOKEN.match(token) and token not in known:
            findings.append(
                Finding(
                    "WC304", rel_path, line,
                    f"`{token}` reads like a fault point or lock name but "
                    "matches neither FAULT_POINTS nor LOCK_ORDER",
                    key=f"stale-token:{token}",
                )
            )
    return findings


def check_test_rules(
    source: str, rel_path: str, tree: Optional[ast.Module] = None
) -> List[Finding]:
    """WC305: ``FaultRule("a.b", ...)`` literals in tests must be
    declared points.  Single-word synthetic names (``"p"``) are the
    unit-test idiom for exercising the plan machinery and are allowed.
    """
    findings: List[Finding] = []
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and (
                (isinstance(node.func, ast.Name) and node.func.id == "FaultRule")
                or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "FaultRule"
                )
            )
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            point = node.args[0].value
            if "." in point and point not in FAULT_POINTS:
                findings.append(
                    Finding(
                        "WC305", rel_path, node.lineno,
                        f"test arms FaultRule({point!r}) but no such fault "
                        "point exists -- the rule can never fire",
                        key=f"unknown-point:{point}",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# WC306 / WC307: stats keys
# ---------------------------------------------------------------------------


def check_stats_source(
    source: str,
    rel_path: str = SHARDS_MODULE,
    tree: Optional[ast.Module] = None,
) -> List[Finding]:
    """WC306: the literal keys built in ``CorpusShard.stats()`` must be
    exactly STATS_KEYS."""
    findings: List[Finding] = []
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    stats_fn: Optional[ast.FunctionDef] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "CorpusShard":
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "stats":
                    stats_fn = item
    if stats_fn is None:
        return [
            Finding(
                "WC306", rel_path, 1,
                "CorpusShard.stats() not found", key="missing-stats",
            )
        ]
    keys: Set[str] = set()
    for node in ast.walk(stats_fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    # dict keys that are epoch-pin sub-keys etc. only appear in nested
    # comprehensions, which ast.Dict above does not produce.
    expected = set(STATS_KEYS)
    for key in sorted(expected - keys):
        findings.append(
            Finding(
                "WC306", rel_path, stats_fn.lineno,
                f"declared stats key {key!r} is not built by stats()",
                key=f"missing-key:{key}",
            )
        )
    for key in sorted(keys - expected):
        findings.append(
            Finding(
                "WC306", rel_path, stats_fn.lineno,
                f"stats() returns undeclared key {key!r} (add it to "
                "STATS_KEYS and the SERVING.md stats table)",
                key=f"undeclared-key:{key}",
            )
        )
    return findings


def check_stats_doc(text: str, rel_path: str = SERVING_DOC) -> List[Finding]:
    """WC307: the SERVING.md stats-key table lists exactly STATS_KEYS."""
    findings: List[Finding] = []
    table = parse_markdown_table(text, ("Key", "Meaning"))
    if table is None:
        return [
            Finding(
                "WC307", rel_path, 1,
                "no stats-key table with Key/Meaning columns found",
                key="missing-table",
            )
        ]
    header_line, _, rows = table
    documented = [strip_backticks(cells[0]) for _, cells in rows]
    for line, cells in rows:
        key = strip_backticks(cells[0])
        if key not in STATS_KEYS:
            findings.append(
                Finding(
                    "WC307", rel_path, line,
                    f"documented stats key {key!r} is not returned by "
                    "CorpusShard.stats()",
                    key=f"unknown-key:{key}",
                )
            )
    for key in STATS_KEYS:
        if key not in documented:
            findings.append(
                Finding(
                    "WC307", rel_path, header_line,
                    f"stats key {key!r} has no row in the stats table",
                    key=f"undocumented-key:{key}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# WC308 / WC309: algorithm registry
# ---------------------------------------------------------------------------


def check_algorithm_sources(
    sources: Sequence[Tuple[str, str]],
    trees: Optional[Dict[str, ast.Module]] = None,
) -> List[Finding]:
    """WC308: the ``@register_algorithm`` classes expose exactly the
    declared names."""
    findings: List[Finding] = []
    registered: Dict[str, Tuple[str, int]] = {}
    for rel_path, source in sources:
        tree = (trees or {}).get(rel_path)
        if tree is None:
            tree = ast.parse(source, filename=rel_path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorated = any(
                isinstance(d, ast.Name) and d.id == "register_algorithm"
                for d in node.decorator_list
            )
            if not decorated:
                continue
            name = None
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Constant
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id == "name":
                            name = stmt.value.value
            if name is None:
                findings.append(
                    Finding(
                        "WC308", rel_path, node.lineno,
                        f"@register_algorithm class {node.name} has no "
                        "literal `name` attribute",
                        key=f"unnamed:{node.name}",
                    )
                )
                continue
            registered[name] = (rel_path, node.lineno)
    for name in sorted(set(ALGORITHMS) - set(registered)):
        findings.append(
            Finding(
                "WC308", ALGORITHM_MODULES[0], 1,
                f"declared algorithm {name!r} is not registered anywhere",
                key=f"missing-algorithm:{name}",
            )
        )
    for name in sorted(set(registered) - set(ALGORITHMS)):
        rel_path, line = registered[name]
        findings.append(
            Finding(
                "WC308", rel_path, line,
                f"registered algorithm {name!r} is not in the ALGORITHMS "
                "table (add it there AND to the API.md registry list)",
                key=f"undeclared-algorithm:{name}",
            )
        )
    return findings


_ALGO_TOKEN = re.compile(r"^(exact|auto|sm-lsh(-\w+)?|dv-fdp(-\w+)?)$")


def check_algorithm_doc(text: str, rel_path: str = API_DOC) -> List[Finding]:
    """WC309: API.md mentions exactly the registered algorithm names."""
    findings: List[Finding] = []
    mentioned: Set[str] = set()
    for line, token in backtick_tokens(text):
        if not _ALGO_TOKEN.match(token) or token == "auto":
            continue
        mentioned.add(token)
        if token not in ALGORITHMS:
            findings.append(
                Finding(
                    "WC309", rel_path, line,
                    f"documented algorithm `{token}` is not in the registry",
                    key=f"unknown-algorithm:{token}",
                )
            )
    for name in sorted(set(ALGORITHMS) - mentioned):
        findings.append(
            Finding(
                "WC309", rel_path, 1,
                f"registered algorithm {name!r} is never mentioned in "
                f"{rel_path}",
                key=f"undocumented-algorithm:{name}",
            )
        )
    return findings


# ---------------------------------------------------------------------------


def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(
        check_errors_module(
            project.source(ERRORS_MODULE), tree=project.tree(ERRORS_MODULE)
        )
    )
    findings.extend(check_error_doc(project.source(API_DOC)))
    fired = set()
    for rel_path in project.python_files("src/repro"):
        tree = project.tree(rel_path)
        findings.extend(
            check_fire_sites(project.source(rel_path), rel_path, tree=tree)
        )
        fired.update(
            p for _, p in _fire_literals(project.source(rel_path), rel_path, tree=tree)
        )
    for point in FAULT_POINTS:
        if point not in fired:
            findings.append(
                Finding(
                    "WC303", "src/repro/serving/reliability.py", 1,
                    f"declared fault point {point!r} is never fired in src",
                    key=f"never-fired:{point}",
                )
            )
    findings.extend(check_fault_doc(project.source(SERVING_DOC)))
    for doc in (API_DOC, SERVING_DOC, DEPLOYMENT_DOC):
        if project.exists(doc):
            findings.extend(check_doc_tokens(project.source(doc), doc))
    for rel_path in project.python_files("tests"):
        findings.extend(
            check_test_rules(
                project.source(rel_path), rel_path, tree=project.tree(rel_path)
            )
        )
    findings.extend(
        check_stats_source(
            project.source(SHARDS_MODULE), tree=project.tree(SHARDS_MODULE)
        )
    )
    findings.extend(check_stats_doc(project.source(SERVING_DOC)))
    present = [m for m in ALGORITHM_MODULES if project.exists(m)]
    findings.extend(
        check_algorithm_sources(
            [(m, project.source(m)) for m in present],
            trees={m: project.tree(m) for m in present},
        )
    )
    findings.extend(check_algorithm_doc(project.source(API_DOC)))
    return findings
