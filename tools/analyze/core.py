"""Shared infrastructure for the repo-native analysis suite.

Findings, the project file/AST cache, baseline handling, and the small
markdown helpers the contract checkers share.  Stdlib only -- the
analyzers must run in CI before (and without) the test dependencies.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "backtick_tokens",
    "parse_markdown_table",
]


@dataclass(frozen=True)
class Finding:
    """One analyzer finding.

    ``key`` is the *stable* identity used for baseline matching: it must
    not contain line numbers, so a baselined finding stays baselined as
    the file shifts around it.  ``(code, path, key)`` is the match key.
    """

    code: str
    path: str  # repo-relative, posix separators
    line: int
    message: str
    key: str

    def render(self) -> str:
        return f"{self.code} {self.path}:{self.line}  {self.message}"


class Project:
    """Repo root plus a parse cache over its python files and docs.

    Sources and ASTs are cached keyed by ``(mtime_ns, size)`` stamps, so
    a CI run over all check families reads and parses each file exactly
    once (``parse_count`` lets tests assert that), while an interactive
    session that edits a file between runs sees fresh content.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root).resolve()
        self._sources: Dict[str, Tuple[Tuple[int, int], str]] = {}
        self._trees: Dict[str, Tuple[Tuple[int, int], ast.Module]] = {}
        #: Number of actual ``ast.parse`` calls (cache misses).
        self.parse_count = 0

    def rel(self, path: Path) -> str:
        return Path(path).resolve().relative_to(self.root).as_posix()

    def exists(self, rel_path: str) -> bool:
        return (self.root / rel_path).exists()

    def _stamp(self, rel_path: str) -> Tuple[int, int]:
        stat = (self.root / rel_path).stat()
        return (stat.st_mtime_ns, stat.st_size)

    def source(self, rel_path: str) -> str:
        stamp = self._stamp(rel_path)
        cached = self._sources.get(rel_path)
        if cached is None or cached[0] != stamp:
            text = (self.root / rel_path).read_text(encoding="utf-8")
            self._sources[rel_path] = (stamp, text)
        return self._sources[rel_path][1]

    def tree(self, rel_path: str) -> ast.Module:
        stamp = self._stamp(rel_path)
        cached = self._trees.get(rel_path)
        if cached is None or cached[0] != stamp:
            self.parse_count += 1
            parsed = ast.parse(self.source(rel_path), filename=rel_path)
            self._trees[rel_path] = (stamp, parsed)
        return self._trees[rel_path][1]

    def python_files(self, *subdirs: str) -> List[str]:
        """Repo-relative paths of every ``.py`` file under ``subdirs``."""
        found: List[str] = []
        for subdir in subdirs:
            base = self.root / subdir
            if not base.exists():
                continue
            for path in sorted(base.rglob("*.py")):
                found.append(self.rel(path))
        return found


@dataclass
class Baseline:
    """Grandfathered findings, committed with one-line justifications.

    Matching ignores line numbers: an entry covers *every* finding with
    the same ``(code, path, key)`` (e.g. both ``queue.put`` calls under
    the shard submit lock are one intentional design decision, not two).
    """

    entries: List[Dict[str, str]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = payload.get("findings", [])
        for entry in entries:
            missing = {"code", "path", "key", "justification"} - set(entry)
            if missing:
                raise ValueError(
                    f"baseline entry {entry!r} is missing {sorted(missing)}"
                )
        return cls(entries=list(entries))

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]]]:
        """Partition findings into (new, baselined) plus stale entries."""
        index = {(e["code"], e["path"], e["key"]): e for e in self.entries}
        matched: set = set()
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            entry_key = (finding.code, finding.path, finding.key)
            if entry_key in index:
                matched.add(entry_key)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [
            entry
            for entry in self.entries
            if (entry["code"], entry["path"], entry["key"]) not in matched
        ]
        return new, baselined, stale


_TABLE_ROW = re.compile(r"^\s*\|(.+)\|\s*$")
_BACKTICK = re.compile(r"`([^`]+)`")


def parse_markdown_table(
    text: str, required_headers: Sequence[str]
) -> Optional[Tuple[int, List[str], List[Tuple[int, List[str]]]]]:
    """Find the first markdown table whose header contains the required
    column names (case-insensitive substring match per column).

    Returns ``(header_line, headers, rows)`` where rows are
    ``(line_number, cells)`` with surrounding whitespace stripped, or
    ``None`` when no such table exists.  Line numbers are 1-based.
    """
    lines = text.splitlines()
    for number, line in enumerate(lines, 1):
        match = _TABLE_ROW.match(line)
        if not match:
            continue
        headers = [cell.strip() for cell in match.group(1).split("|")]
        lowered = [header.lower() for header in headers]
        if not all(
            any(required.lower() in cell for cell in lowered)
            for required in required_headers
        ):
            continue
        rows: List[Tuple[int, List[str]]] = []
        for offset, row_line in enumerate(lines[number:], number + 1):
            row_match = _TABLE_ROW.match(row_line)
            if not row_match:
                break
            cells = [cell.strip() for cell in row_match.group(1).split("|")]
            if all(set(cell) <= {"-", ":", " "} for cell in cells):
                continue  # the |---|---| separator row
            rows.append((offset, cells))
        return number, headers, rows
    return None


def backtick_tokens(text: str) -> List[Tuple[int, str]]:
    """Every backticked token in ``text`` with its 1-based line number."""
    tokens: List[Tuple[int, str]] = []
    for number, line in enumerate(text.splitlines(), 1):
        for match in _BACKTICK.finditer(line):
            tokens.append((number, match.group(1)))
    return tokens


def strip_backticks(cell: str) -> str:
    """``` `code` ``` -> ``code`` (first backticked token, or the cell)."""
    match = _BACKTICK.search(cell)
    return match.group(1) if match else cell.strip()
