"""Determinism lint (DT6xx) over the AST.

The HTAP parity claim -- a solve is bit-identical regardless of
interleaving, replay, or process restarts -- only holds if nothing on
the solve/fold/serde paths consults hidden global state.  These checks
flag the classic leaks:

* **DT601** -- unseeded randomness anywhere under ``src/repro``:
  ``default_rng()`` with no seed, module-level ``random.<draw>()`` /
  ``np.random.<draw>()`` (the shared global generators), or a
  ``random.Random()`` / ``RandomState()`` constructed without a seed.
* **DT602** -- direct iteration of a ``set`` expression (``set(...)``,
  ``frozenset(...)``, a set literal or comprehension): set order is
  salted per process, so anything it feeds -- serialization, group
  ordering, tie-breaks -- varies run to run.  Wrap in ``sorted(...)``.
* **DT603** -- wall-clock reads (``time.time``, ``datetime.now``, ...)
  inside the deterministic-path packages (core, algorithms, index,
  geometry, text).  Timing belongs to the serving/ops layers;
  ``time.monotonic`` / ``perf_counter`` instrumentation is not flagged.
* **DT604** -- ``sorted`` / ``.sort`` / ``min`` / ``max`` whose ``key``
  uses ``id()``: object addresses reshuffle every run, so ties resolve
  differently each time.

Escape hatch: a ``# analyze: nondeterminism-ok(<why>)`` comment on the
offending line (or the line above) suppresses the finding -- the "why"
is mandatory by convention and reviewed like any baseline entry.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Sequence

from tools.analyze.core import Finding, Project
from tools.analyze.locks import SCAN_DIRS, _receiver_text

__all__ = [
    "DETERMINISTIC_PATHS",
    "NONDETERMINISM_MARKER",
    "check_file",
    "run",
]

#: Packages on the solve/fold/serde paths: results produced here must be
#: reproducible bit-for-bit, so wall-clock reads are banned outright.
DETERMINISTIC_PATHS = (
    "src/repro/core/",
    "src/repro/algorithms/",
    "src/repro/index/",
    "src/repro/geometry/",
    "src/repro/text/",
)

NONDETERMINISM_MARKER = "# analyze: nondeterminism-ok("
_MARKER_RE = re.compile(r"#\s*analyze:\s*nondeterminism-ok\(")

#: Draw methods on the global ``random`` module generator.
_PY_RANDOM_DRAWS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "gauss", "normalvariate",
        "lognormvariate", "expovariate", "betavariate", "gammavariate",
        "paretovariate", "vonmisesvariate", "weibullvariate", "getrandbits",
        "randbytes",
    }
)

#: Draw methods on the legacy numpy global generator (``np.random.*``).
_NP_RANDOM_DRAWS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "normal", "uniform",
        "standard_normal", "beta", "binomial", "poisson", "exponential",
        "bytes",
    }
)

_NP_RECEIVERS = ("np.random", "numpy.random")

#: Calls that *consume* an iterable in encounter order.
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate"})

_WALL_CLOCK = (
    ("time", ("time", "time_ns")),
    ("datetime", ("now", "utcnow")),
    ("date", ("today",)),
)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _contains_id_call(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "id"
        ):
            return True
    return False


class _DeterminismScan(ast.NodeVisitor):
    def __init__(self, rel_path: str, lines: Sequence[str]) -> None:
        self.rel_path = rel_path
        self.lines = lines
        self.findings: List[Finding] = []
        self.wall_clock_banned = rel_path.startswith(DETERMINISTIC_PATHS)

    def _suppressed(self, line: int) -> bool:
        for number in (line, line - 1):
            if 1 <= number <= len(self.lines) and _MARKER_RE.search(
                self.lines[number - 1]
            ):
                return True
        return False

    def _flag(self, code: str, line: int, message: str, key: str) -> None:
        if self._suppressed(line):
            return
        self.findings.append(Finding(code, self.rel_path, line, message, key))

    # -- DT602: set iteration -------------------------------------------
    def _check_iterated(self, node: ast.expr, line: int, how: str) -> None:
        if _is_set_expr(node):
            self._flag(
                "DT602", line,
                f"iterating a set expression {how}: set order is salted "
                "per process, so downstream ordering (serialization, "
                "tie-breaks) varies run to run -- wrap it in sorted(...) "
                f"or annotate '{NONDETERMINISM_MARKER}<why>)'",
                key=f"set-iteration:{how}",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterated(node.iter, node.lineno, "in a for loop")
        self.generic_visit(node)

    def _visit_comprehensions(self, node) -> None:
        for comp in node.generators:
            self._check_iterated(comp.iter, node.lineno, "in a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehensions
    visit_SetComp = _visit_comprehensions
    visit_DictComp = _visit_comprehensions
    visit_GeneratorExp = _visit_comprehensions

    # -- calls: DT601 / DT602-consumers / DT603 / DT604 -----------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng(node)
        self._check_consumer(node)
        self._check_wall_clock(node)
        self._check_id_key(node)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call) -> None:
        func = node.func
        name = None
        receiver = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            receiver = _receiver_text(func.value)
        if name == "default_rng" and not node.args and not node.keywords:
            self._flag(
                "DT601", node.lineno,
                "default_rng() without a seed: every process draws a "
                "different stream -- thread the component seed through",
                key="unseeded:default_rng",
            )
            return
        if (
            name in ("Random", "RandomState")
            and not node.args
            and not node.keywords
        ):
            self._flag(
                "DT601", node.lineno,
                f"{name}() constructed without a seed -- thread the "
                "component seed through",
                key=f"unseeded:{name}",
            )
            return
        if receiver == "random" and name in _PY_RANDOM_DRAWS:
            self._flag(
                "DT601", node.lineno,
                f"random.{name}() draws from the unseeded process-global "
                "generator; use a seeded random.Random instance",
                key=f"global-rng:random.{name}",
            )
            return
        if receiver in _NP_RECEIVERS and name in _NP_RANDOM_DRAWS:
            self._flag(
                "DT601", node.lineno,
                f"{receiver}.{name}() draws from numpy's global generator; "
                "use a seeded np.random.default_rng(seed)",
                key=f"global-rng:np.random.{name}",
            )

    def _check_consumer(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CONSUMERS:
            if node.args:
                self._check_iterated(
                    node.args[0], node.lineno, f"via {func.id}()"
                )
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            if node.args:
                self._check_iterated(node.args[0], node.lineno, "via join()")

    def _check_wall_clock(self, node: ast.Call) -> None:
        if not self.wall_clock_banned:
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = _receiver_text(func.value)
        tail = receiver.rsplit(".", 1)[-1]
        for module_tail, names in _WALL_CLOCK:
            if tail == module_tail and func.attr in names:
                self._flag(
                    "DT603", node.lineno,
                    f"wall-clock read {receiver}.{func.attr}() on a "
                    "deterministic path (solve/fold/serde packages must be "
                    "replayable bit-for-bit); take timestamps at the "
                    "serving layer and pass them in",
                    key=f"wall-clock:{func.attr}",
                )
                return

    def _check_id_key(self, node: ast.Call) -> None:
        func = node.func
        ordering = (
            isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not ordering:
            return
        for keyword in node.keywords:
            if keyword.arg == "key" and _contains_id_call(keyword.value):
                name = func.id if isinstance(func, ast.Name) else "sort"
                self._flag(
                    "DT604", node.lineno,
                    f"{name}() key uses id(): object addresses reshuffle "
                    "every run, so ties resolve nondeterministically -- key "
                    "on stable content instead",
                    key=f"id-ordering:{name}",
                )


def check_file(
    rel_path: str,
    source: str,
    tree: Optional[ast.Module] = None,
) -> List[Finding]:
    """DT6xx over one module.  Fixture tests pass synthetic sources."""
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    scan = _DeterminismScan(rel_path, source.splitlines())
    scan.visit(tree)
    return scan.findings


def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for rel_path in project.python_files(*SCAN_DIRS):
        findings.extend(
            check_file(
                rel_path, project.source(rel_path), tree=project.tree(rel_path)
            )
        )
    return findings
