"""Documentation link integrity (DL5xx) -- the former
``tools/check_doc_links.py``, folded into the analysis suite.

* **DL501** -- a relative link target in a top-level markdown file does
  not exist on disk.
* **DL502** -- a link target resolves outside the repository root.

External links (http/https/mailto) and pure in-page anchors are not
checked; this is a docs-integrity gate, not a crawler.
"""

from __future__ import annotations

import re
import urllib.parse
from pathlib import Path
from typing import List

from tools.analyze.core import Finding, Project

__all__ = ["check_text", "run"]

#: Inline markdown links; deliberately simple (no nested parens in our docs).
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def check_text(rel_path: str, text: str, root: Path) -> List[Finding]:
    """DL501/DL502 over one markdown file's text."""
    findings: List[Finding] = []
    base = (root / rel_path).parent
    for number, line in enumerate(text.splitlines(), 1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_SCHEMES):
                continue
            path_part, _, _anchor = target.partition("#")
            if not path_part:
                continue  # pure in-page anchor
            resolved = (base / urllib.parse.unquote(path_part)).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                findings.append(
                    Finding(
                        "DL502", rel_path, number,
                        f"link ({target}) escapes the repository root",
                        key=f"escape:{target}",
                    )
                )
                continue
            if not resolved.exists():
                findings.append(
                    Finding(
                        "DL501", rel_path, number,
                        f"link ({target}) -> missing {resolved}",
                        key=f"broken:{target}",
                    )
                )
    return findings


def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for path in sorted(project.root.glob("*.md")):
        rel_path = project.rel(path)
        findings.extend(
            check_text(rel_path, project.source(rel_path), project.root)
        )
    return findings
