"""Human-facing explanations for every finding code (``--explain``).

Every code any checker can emit must have an entry here -- the test
suite enforces it (``tests/tools/test_analyze.py``).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["EXPLANATIONS"]

EXPLANATIONS: Dict[str, str] = {
    # -- lock discipline ------------------------------------------------
    "LD101": (
        "Bare lock acquire.  An `X.acquire()` whose release is not "
        "structurally guaranteed: use a `with` statement, or follow the "
        "acquire immediately with `try: ... finally: X.release()`.  An "
        "exception between acquire and release leaks the lock and hangs "
        "every later acquirer.  Non-blocking probes whose result is "
        "branched on (`if lock.acquire(blocking=False): ...`) are exempt."
    ),
    "LD102": (
        "Blocking call inside a fast-path critical section.  Locks marked "
        "fast_path in tools/analyze/hierarchy.py sit on the serving hot "
        "path (insert/solve/stats/routing); holding one across sqlite, "
        "socket, queue, sleep or snapshot I/O turns one slow call into a "
        "convoy for every request behind it.  Move the I/O outside the "
        "lock (capture state under the lock, act on it after), or -- if "
        "the hold is a deliberate design decision -- baseline the finding "
        "with a one-line justification."
    ),
    "LD103": (
        "Undeclared or drifted lock.  Every lock assigned to an instance "
        "attribute in the scanned modules must have a LockDecl in "
        "tools/analyze/hierarchy.py (so it has a rank in the deadlock "
        "hierarchy), be constructed through the witness factories "
        "(named_lock / named_rlock / ReadWriteLock(name=...)) with "
        "exactly the declared name and kind, and every declaration must "
        "match a real construction.  This keeps the static hierarchy, "
        "the runtime witness and the code itself in lock-step."
    ),
    # -- deadlock hierarchy ---------------------------------------------
    "LH201": (
        "Static lock-order inversion.  Lexically nested `with` blocks "
        "acquire declared locks against the canonical order in "
        "tools/analyze/hierarchy.LOCK_ORDER (or re-acquire a "
        "non-reentrant lock).  Two threads taking the same pair of locks "
        "in opposite orders deadlock; the fix is to reorder the "
        "acquisitions or change the hierarchy deliberately (update "
        "LOCK_ORDER *and* repro.core.witness.LOCK_HIERARCHY together)."
    ),
    "LH202": (
        "Hierarchy drift.  The analyzer's LOCK_ORDER and the runtime "
        "witness's LOCK_HIERARCHY (src/repro/core/witness.py) must be "
        "identical tuples, and every declared lock must rank in them "
        "exactly once.  The static checks and the runtime witness are "
        "two halves of one invariant; if their orders diverge, each "
        "half silently validates a different hierarchy."
    ),
    # -- wire contracts --------------------------------------------------
    "WC301": (
        "Error-taxonomy drift in code.  The ApiError subclasses in "
        "src/repro/api/errors.py (their `code` and `status` attributes, "
        "and membership in _ERRORS_BY_CODE) must match "
        "tools/analyze/contracts.ERROR_TAXONOMY.  Client-side errors "
        "(wire=False) must stay OUT of the registry -- they are never "
        "serialised."
    ),
    "WC302": (
        "Error-taxonomy drift in docs.  The API.md error table must have "
        "exactly one row per taxonomy class with the declared wire code "
        "and HTTP status (em-dash for client-side errors)."
    ),
    "WC303": (
        "Unknown fault point fired in src, or a declared point never "
        "fired.  Every `plan.fire(\"...\")` literal must be one of "
        "tools/analyze/contracts.FAULT_POINTS; a declared point with no "
        "fire site is a stale table entry that chaos drills would arm "
        "in vain."
    ),
    "WC304": (
        "Fault-point drift in docs.  The SERVING.md drill table must "
        "list exactly FAULT_POINTS; additionally any backticked "
        "`prefix.word` token in the serving docs that looks like a "
        "fault point or lock name must actually be one (stale names in "
        "prose mislead operators running drills)."
    ),
    "WC305": (
        "Test arms a nonexistent fault point.  A "
        "`FaultRule(\"a.b\", ...)` whose dotted point is not declared "
        "can never fire -- the drill silently tests nothing.  Synthetic "
        "single-word names (\"p\") used by the plan-machinery unit tests "
        "are allowed."
    ),
    "WC306": (
        "Stats-key drift in code.  The literal keys CorpusShard.stats() "
        "returns must be exactly tools/analyze/contracts.STATS_KEYS -- "
        "these keys are republished by /corpora/<name>/stats and "
        "aggregated into /healthz, so an unilateral rename breaks "
        "dashboards."
    ),
    "WC307": (
        "Stats-key drift in docs.  The SERVING.md stats-key table must "
        "list exactly STATS_KEYS."
    ),
    "WC308": (
        "Algorithm-registry drift in code.  The @register_algorithm "
        "classes must expose exactly the names in "
        "tools/analyze/contracts.ALGORITHMS via their `name` attribute."
    ),
    "WC309": (
        "Algorithm-registry drift in docs.  API.md must mention every "
        "registered algorithm name, and must not document names the "
        "registry does not serve."
    ),
    # -- writer hygiene --------------------------------------------------
    "WR401": (
        "Mutator missing its @locked_by annotation.  The declared "
        "mutating methods of IncrementalTagDM and SqliteTaggingStore "
        "must carry @locked_by(\"<lock>\") naming the lock that guards "
        "them.  The decorator is static metadata (no runtime wrapper); "
        "it makes the synchronization contract greppable and checkable."
    ),
    "WR402": (
        "Session mutator called outside a writer context.  "
        "IncrementalTagDM mutators are externally synchronized: a call "
        "site must hold the shard's exclusive merge lock "
        "(write_locked()), sit in a function itself tagged @locked_by, "
        "or carry an `# analyze: writer-context` comment stating the "
        "single-writer argument (e.g. startup-only replay before any "
        "thread exists)."
    ),
    "WR403": (
        "Self-guarded monitor method without its internal lock.  "
        "SqliteTaggingStore mutators promise thread safety themselves; "
        "a body that never takes `with self._lock:` silently drops that "
        "promise while the @locked_by annotation still advertises it."
    ),
    # -- shared-state races ----------------------------------------------
    "RC501": (
        "Write to an attribute with no ownership declaration.  Every "
        "instance attribute of a declared concurrency class must be "
        "classified into an ownership domain (init-only, lock:<name>, "
        "confined:<label>, frozen-after-publish) in "
        "tools/analyze/ownership.py, via the class's @owned_by "
        "decorator, or inline with `# analyze: owner=<domain>`.  "
        "Completeness is deliberate: a new field cannot silently join a "
        "shared class unclassified.  Also fired for a declared domain "
        "string the analyzer does not recognise."
    ),
    "RC502": (
        "Attribute store outside its ownership domain.  A direct "
        "`self.X = ...` / `del self.X` after construction that is not "
        "in the domain's writer context: init-only and "
        "frozen-after-publish attributes must not be written post-init "
        "at all; lock:<name> attributes need the lock held (a lexical "
        "`with`, write_locked() for rwlocks, an enclosing "
        "@locked_by(\"<name>\"), or an `# analyze: writer-context` "
        "comment); confined:<label> attributes may only be written by "
        "the declared writer methods."
    ),
    "RC503": (
        "Container or nested-object mutation outside its ownership "
        "domain.  Same contract as RC502 but for writes *through* the "
        "attribute: `self.X[...] = ...`, `self.X.append(...)`, "
        "`self.X.Y = ...`.  These mutate shared state just as surely as "
        "rebinding the attribute, and are easier to miss in review."
    ),
    "RC504": (
        "Mutation of published-view state.  A store/del/mutator call "
        "whose receiver chain goes through a view (`view`, `*_view`): a "
        "frozen SessionView and everything reachable from it is "
        "immutable after freeze() -- concurrent solvers read it with no "
        "lock.  Mutate the live session under the merge lock and "
        "publish a new epoch.  The runtime half of this contract is the "
        "TAGDM_STATE_SANITIZER raise-on-write proxies "
        "(repro.core.sanitizer)."
    ),
    "RC505": (
        "Stale ownership declaration.  A declared attribute the class "
        "never writes, or a declared class the module no longer "
        "defines.  Dead entries rot the table's authority; delete them "
        "in the same change that removed the code."
    ),
    # -- determinism ------------------------------------------------------
    "DT601": (
        "Unseeded randomness.  default_rng() without a seed, a draw on "
        "the process-global `random` / `np.random` generators, or a "
        "Random()/RandomState() constructed seedless.  Every stochastic "
        "component must thread its seed from the session/component "
        "configuration so replays are bit-identical.  Suppress a "
        "deliberate use with `# analyze: nondeterminism-ok(<why>)`."
    ),
    "DT602": (
        "Set iteration feeding order-sensitive consumers.  Iterating a "
        "set expression (for loop, comprehension, list()/tuple()/"
        "enumerate()/join()) leaks the per-process hash salt into "
        "downstream ordering -- serialization, group order, tie-breaks.  "
        "Wrap the set in sorted(...), or annotate "
        "`# analyze: nondeterminism-ok(<why>)` when order provably "
        "cannot escape."
    ),
    "DT603": (
        "Wall-clock read on a deterministic path.  time.time(), "
        "datetime.now() etc. inside the solve/fold/serde packages "
        "(core, algorithms, index, geometry, text) make results depend "
        "on when they ran.  Take timestamps at the serving/ops layer "
        "and pass them in; monotonic timing instrumentation is exempt."
    ),
    "DT604": (
        "id()-based ordering.  A sorted()/.sort()/min()/max() key that "
        "calls id() resolves ties by object address, which reshuffles "
        "every run.  Key on stable content (description, name, index) "
        "instead."
    ),
    # -- doc links --------------------------------------------------------
    "DL501": (
        "Broken documentation link.  A relative markdown link in a "
        "top-level doc points at a file that does not exist."
    ),
    "DL502": (
        "Documentation link escapes the repository.  A relative link "
        "resolves outside the repo root -- it cannot work in a clone."
    ),
}
