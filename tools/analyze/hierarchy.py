"""The declared lock universe: names, owners, order, and blocking calls.

This module is the static analyzer's source of truth for checks LD1xx /
LH2xx.  The same canonical order lives at runtime in
``repro.core.witness.LOCK_HIERARCHY`` (which must stay importable from
production code without pulling in ``tools/``); check LH202 parses that
module's AST and fails the build if the two tuples ever drift.

Every lock in the concurrency-bearing layers must be declared here --
an undeclared ``threading.Lock()`` assigned to an instance attribute in
a scanned module is finding LD103.  Declarations are keyed by
``(module, cls, attr)`` because several classes name their lock
``_lock``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "BLOCKING_CALLS",
    "LOCK_DECLS",
    "LOCK_ORDER",
    "LOCK_RANK",
    "LockDecl",
    "WITNESS_MODULE",
    "decl_index",
]

#: Where the runtime copy of the hierarchy lives (LH202 cross-check).
WITNESS_MODULE = "src/repro/core/witness.py"

#: Canonical acquisition order, outermost first.  A thread holding the
#: lock at index ``i`` may only acquire locks with index ``> i``.
LOCK_ORDER: Tuple[str, ...] = (
    "fleet.lifecycle",
    "fleet.registry",
    "server.registry",
    "shard.submit",
    "shard.maintenance",
    "shard.merge",
    "shard.stats",
    "subs.state",
    "store.lock",
    "view.build",
    "placement.table",
    "router.breakers",
    "router.pools",
    "router.stats",
    "client.placement",
    "pool.lock",
    "breaker.state",
    "budget.rng",
    "faultplan.state",
)

LOCK_RANK: Dict[str, int] = {name: index for index, name in enumerate(LOCK_ORDER)}


@dataclass(frozen=True)
class LockDecl:
    """One declared lock: its witness name, owner, kind and class.

    ``fast_path`` marks locks whose critical sections sit on hot serving
    paths (or are taken by them): no blocking call from
    :data:`BLOCKING_CALLS` may appear lexically inside a ``with`` block
    on a fast-path lock (check LD102).
    """

    name: str
    module: str
    cls: str
    attr: str
    kind: str  # "lock" | "rlock" | "rwlock"
    fast_path: bool
    description: str


LOCK_DECLS: Tuple[LockDecl, ...] = (
    LockDecl(
        "fleet.lifecycle", "src/repro/serving/fleet.py", "FleetWorker",
        "lifecycle_lock", "lock", False,
        "spawn/stop transitions of one worker (supervisor vs admin calls)",
    ),
    LockDecl(
        "fleet.registry", "src/repro/serving/fleet.py", "TagDMFleet",
        "_lock", "rlock", False,
        "worker handle state (process/connection/port)",
    ),
    LockDecl(
        "server.registry", "src/repro/serving/server.py", "TagDMServer",
        "_registry_lock", "lock", True,
        "corpus registry; held over full ingest/warm-start by design",
    ),
    LockDecl(
        "shard.submit", "src/repro/serving/shards.py", "CorpusShard",
        "_submit_lock", "lock", True,
        "closed-check + enqueue atomicity on the insert path",
    ),
    LockDecl(
        "shard.maintenance", "src/repro/serving/shards.py", "CorpusShard",
        "_maintenance_lock", "rlock", False,
        "fold/rotate serialisation (writer vs merge thread)",
    ),
    LockDecl(
        "shard.merge", "src/repro/serving/shards.py", "CorpusShard",
        "_lock", "rwlock", False,
        "ticket RW lock: exclusive delta apply, shared fold/snapshot",
    ),
    LockDecl(
        "shard.stats", "src/repro/serving/shards.py", "CorpusShard",
        "_stats_lock", "lock", True,
        "serving counters, published view and epoch pins",
    ),
    LockDecl(
        "subs.state", "src/repro/serving/subscriptions.py", "SubscriptionEvaluator",
        "_lock", "lock", True,
        "pending-view queue and delivery counters of the standing-query "
        "evaluator; store writes and solves run outside it",
    ),
    LockDecl(
        "store.lock", "src/repro/dataset/sqlite_store.py", "SqliteTaggingStore",
        "_lock", "rlock", False,
        "serialises all transactions on the shared sqlite connection",
    ),
    LockDecl(
        "view.build", "src/repro/core/incremental.py", "SessionView",
        "_build_lock", "lock", False,
        "lazy one-time builds of a frozen view's derived state",
    ),
    LockDecl(
        "placement.table", "src/repro/serving/router.py", "PlacementTable",
        "_lock", "rlock", True,
        "corpus -> worker rendezvous map and pins",
    ),
    LockDecl(
        "router.breakers", "src/repro/serving/router.py", "TagDMRouter",
        "_breakers_lock", "lock", True,
        "per-worker circuit-breaker registry",
    ),
    LockDecl(
        "router.pools", "src/repro/serving/router.py", "TagDMRouter",
        "_pools_lock", "lock", True,
        "per-worker connection-pool registry",
    ),
    LockDecl(
        "router.stats", "src/repro/serving/router.py", "TagDMRouter",
        "_stats_lock", "lock", True,
        "forwarding counters",
    ),
    LockDecl(
        "client.placement", "src/repro/api/client.py", "FleetClient",
        "_lock", "lock", True,
        "client-side placement cache and per-worker client registry",
    ),
    LockDecl(
        "pool.lock", "src/repro/api/client.py", "HttpConnectionPool",
        "_lock", "lock", True,
        "idle-connection list (requests themselves run outside it)",
    ),
    LockDecl(
        "breaker.state", "src/repro/serving/reliability.py", "CircuitBreaker",
        "_lock", "lock", True,
        "breaker state machine fields",
    ),
    LockDecl(
        "budget.rng", "src/repro/serving/reliability.py", "RetryBudget",
        "_lock", "lock", True,
        "jitter RNG draws",
    ),
    LockDecl(
        "faultplan.state", "src/repro/serving/reliability.py", "FaultPlan",
        "_lock", "lock", True,
        "arrival/fired counters; fire() sits on the apply and solve paths",
    ),
)


def decl_index() -> Dict[Tuple[str, str, str], LockDecl]:
    """Declarations keyed by ``(module, cls, attr)``."""
    return {(decl.module, decl.cls, decl.attr): decl for decl in LOCK_DECLS}


#: Attribute-call names treated as blocking when they appear inside a
#: fast-path critical section, with the reason reported.  Receiver-
#: insensitive except where noted in ``locks.py`` (``put``/``get``/
#: ``join`` require a queue-ish receiver; ``sleep`` requires the
#: ``time`` module).
BLOCKING_CALLS: Dict[str, str] = {
    # sqlite / transactions
    "execute": "sqlite statement",
    "executemany": "sqlite batch statement",
    "executescript": "sqlite script",
    "commit": "sqlite commit",
    "rollback": "sqlite rollback",
    # sockets / HTTP
    "connect": "socket connect",
    "sendall": "socket send",
    "recv": "socket recv",
    "getresponse": "HTTP response wait",
    "request": "HTTP round-trip",
    "urlopen": "HTTP round-trip",
    "serve_forever": "server accept loop",
    # queues / threads (receiver-gated in locks.py)
    "put": "blocking queue put",
    "get": "blocking queue get",
    "join": "blocking join",
    # time (module-gated in locks.py)
    "sleep": "sleep",
    # filesystem
    "mkdir": "directory creation",
    "unlink": "file removal",
    "rename": "file rename",
    "replace": "file replace",
    "write_bytes": "file write",
    "write_text": "file write",
    # repo-native heavyweight operations
    "rotate": "snapshot write",
    "save_session": "snapshot write",
    "read_snapshot": "snapshot read",
    "from_dataset": "full sqlite ingest",
    "to_dataset": "full sqlite read",
    "ingest": "full sqlite ingest",
    "tail_actions": "sqlite tail read",
    "prepare": "full session prepare",
    "close": "drain/close",
    "_claim_latch": "cross-process latch file creation",
}
