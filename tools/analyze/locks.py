"""Lock-discipline checks (LD1xx) over the AST.

* **LD101** -- every ``.acquire()`` must be paired with a ``try/finally``
  release or be a non-blocking probe used as a condition.
* **LD102** -- no blocking call (sqlite, sockets, queue waits, sleeps,
  snapshot/file writes; see ``hierarchy.BLOCKING_CALLS``) lexically
  inside a ``with`` block on a declared *fast-path* lock.
* **LD103** -- every lock assigned to an instance attribute in the
  scanned modules must be declared in ``hierarchy.LOCK_DECLS``, be
  constructed through the witness factories with the declared name, and
  every declaration must correspond to a real construction.

Checkers operate on ``(rel_path, source)`` pairs so the test fixture
corpus can feed them synthetic modules.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from tools.analyze.core import Finding, Project
from tools.analyze.hierarchy import BLOCKING_CALLS, LOCK_DECLS, LockDecl

__all__ = ["SCAN_DIRS", "SCAN_EXCLUDE", "check_file", "run"]

#: Directories whose python files the lock checks scan.
SCAN_DIRS = ("src/repro",)

#: The witness module implements the instrumentation itself (it wraps
#: raw locks and delegates ``acquire``); scanning it would flag its own
#: machinery.
SCAN_EXCLUDE = ("src/repro/core/witness.py",)

_FACTORY_KINDS = {
    "named_lock": "lock",
    "named_rlock": "rlock",
    "ReadWriteLock": "rwlock",
}

#: Queue-style waits are blocking only on queue-ish receivers and only
#: without a timeout.
_RECEIVER_GATED = {
    "put": ("queue",),
    "get": ("queue",),
    "join": ("queue", "thread", "writer", "merger", "process", "proc"),
}


def _receiver_text(node: ast.expr) -> str:
    """A dotted rendering of a call receiver (``self._queue`` etc.)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(_receiver_text(node.func) + "()")
    return ".".join(reversed(parts))


def _base_attr(node: ast.expr) -> Optional[Tuple[str, str]]:
    """Resolve ``self.X`` / ``self.X.method()`` / ``name.X`` to
    ``(receiver, attr)`` where receiver is the base variable name."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        value = node.value
        if isinstance(value, ast.Name):
            return value.id, node.attr
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            # self._lock.write_locked -> base attr is _lock
            return value.value.id, value.attr
    return None


class _ModuleScan(ast.NodeVisitor):
    """One pass collecting class/function context for every lock use."""

    def __init__(
        self,
        rel_path: str,
        tree: ast.Module,
        decls: Sequence[LockDecl],
        blocking: Dict[str, str],
    ) -> None:
        self.rel_path = rel_path
        self.tree = tree
        self.blocking = blocking
        self.findings: List[Finding] = []
        self.constructed: List[Tuple[str, str, str]] = []
        self._by_key = {
            (d.module, d.cls, d.attr): d for d in decls if d.module == rel_path
        }
        self._by_attr: Dict[str, List[LockDecl]] = {}
        for decl in decls:
            if decl.module == rel_path:
                self._by_attr.setdefault(decl.attr, []).append(decl)
        self._class_stack: List[str] = []

    # -- context tracking ----------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _enclosing_class(self) -> str:
        return self._class_stack[-1] if self._class_stack else ""

    def resolve(self, node: ast.expr) -> Optional[LockDecl]:
        """The declared lock a ``with`` item / receiver refers to."""
        base = _base_attr(node)
        if base is None:
            return None
        receiver, attr = base
        if receiver == "self":
            decl = self._by_key.get((self.rel_path, self._enclosing_class(), attr))
            if decl is not None:
                return decl
        candidates = self._by_attr.get(attr, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- LD103: lock constructions -------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_construction(node)
        self.generic_visit(node)

    def _check_construction(self, node: ast.Assign) -> None:
        value = node.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        factory = None
        raw = None
        if isinstance(func, ast.Name) and func.id in _FACTORY_KINDS:
            factory = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
            and func.attr in ("Lock", "RLock")
        ):
            raw = func.attr
        else:
            return
        targets = [
            t
            for t in node.targets
            if isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
        ]
        if not targets:
            return  # locals and module-level locks are out of scope
        attr = targets[0].attr
        key = (self.rel_path, self._enclosing_class(), attr)
        decl = self._by_key.get(key)
        if decl is None:
            self.findings.append(
                Finding(
                    "LD103",
                    self.rel_path,
                    node.lineno,
                    f"lock attribute {self._enclosing_class()}.{attr} is not "
                    "declared in tools/analyze/hierarchy.py (add a LockDecl "
                    "with a rank, or stop constructing a lock here)",
                    key=f"undeclared:{self._enclosing_class()}.{attr}",
                )
            )
            return
        self.constructed.append(key)
        if raw is not None:
            self.findings.append(
                Finding(
                    "LD103",
                    self.rel_path,
                    node.lineno,
                    f"lock {decl.name!r} is constructed as threading.{raw}() "
                    "directly; use the witness factory "
                    f"named_{'r' if raw == 'RLock' else ''}lock({decl.name!r}) "
                    "so the runtime lock-order witness can see it",
                    key=f"raw-construction:{decl.name}",
                )
            )
            return
        # Factory-constructed: the literal name must match the decl and
        # the factory kind must match the declared kind.
        literal = None
        if value.args and isinstance(value.args[0], ast.Constant):
            literal = value.args[0].value
        for keyword in value.keywords:
            if keyword.arg == "name" and isinstance(keyword.value, ast.Constant):
                literal = keyword.value.value
        if factory == "ReadWriteLock" and literal is None:
            self.findings.append(
                Finding(
                    "LD103",
                    self.rel_path,
                    node.lineno,
                    f"lock {decl.name!r} is a ReadWriteLock constructed "
                    "without a witness name",
                    key=f"unnamed:{decl.name}",
                )
            )
            return
        if literal != decl.name:
            self.findings.append(
                Finding(
                    "LD103",
                    self.rel_path,
                    node.lineno,
                    f"lock attribute {decl.cls}.{decl.attr} is named "
                    f"{literal!r} at construction but declared as "
                    f"{decl.name!r} in the hierarchy",
                    key=f"name-mismatch:{decl.name}",
                )
            )
        if _FACTORY_KINDS[factory] != decl.kind:
            self.findings.append(
                Finding(
                    "LD103",
                    self.rel_path,
                    node.lineno,
                    f"lock {decl.name!r} is declared {decl.kind!r} but "
                    f"constructed via {factory}()",
                    key=f"kind-mismatch:{decl.name}",
                )
            )

    # -- LD101: bare acquires ------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_acquires(node)
        self._check_fast_path_blocks(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_acquires(self, func: ast.FunctionDef) -> None:
        for statements in _statement_lists(func):
            for index, stmt in enumerate(statements):
                call = _acquire_call(stmt)
                if call is None:
                    continue
                receiver = ast.dump(call.func.value)  # type: ignore[union-attr]
                if _is_probe(stmt):
                    continue
                if _released_in_finally(stmt, statements, index, receiver):
                    continue
                self.findings.append(
                    Finding(
                        "LD101",
                        self.rel_path,
                        stmt.lineno,
                        f"{_receiver_text(call.func.value)}.acquire() "  # type: ignore[union-attr]
                        "without a with-statement or try/finally release "
                        "-- an exception here leaks the lock",
                        key=f"bare-acquire:{_receiver_text(call.func.value)}",  # type: ignore[union-attr]
                    )
                )

    # -- LD102: blocking calls under fast-path locks --------------------
    def _check_fast_path_blocks(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                decl = self.resolve(item.context_expr)
                if decl is None or not decl.fast_path:
                    continue
                for line, name, reason in self._blocking_calls(node.body):
                    self.findings.append(
                        Finding(
                            "LD102",
                            self.rel_path,
                            line,
                            f"blocking call .{name}() ({reason}) inside the "
                            f"critical section of fast-path lock "
                            f"{decl.name!r}",
                            key=f"{decl.name}:{name}",
                        )
                    )

    def _blocking_calls(
        self, body: Sequence[ast.stmt]
    ) -> List[Tuple[int, str, str]]:
        found: List[Tuple[int, str, str]] = []

        def walk_pruned(node: ast.AST):
            """ast.walk, but never descending into nested callables --
            code defined under the lock executes elsewhere."""
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                yield child
                yield from walk_pruned(child)

        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in [stmt, *walk_pruned(stmt)]:
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Name):
                    if node.func.id == "open":
                        found.append((node.lineno, "open", "file open"))
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                name = node.func.attr
                receiver = _receiver_text(node.func.value).lower()
                if name == "sleep":
                    if receiver.split(".")[-1] == "time" or receiver == "time":
                        found.append((node.lineno, name, BLOCKING_CALLS[name]))
                    continue
                if name in _RECEIVER_GATED:
                    hints = _RECEIVER_GATED[name]
                    if not any(hint in receiver for hint in hints):
                        continue
                    if any(kw.arg == "timeout" for kw in node.keywords):
                        continue  # bounded wait: an explicit product decision
                    found.append((node.lineno, name, self.blocking[name]))
                    continue
                if name in self.blocking:
                    found.append((node.lineno, name, self.blocking[name]))
        return found


def _statement_lists(func: ast.FunctionDef):
    """Every statement list in ``func`` (bodies, orelse, finalbody...)."""
    for node in ast.walk(func):
        for field in ("body", "orelse", "finalbody"):
            statements = getattr(node, field, None)
            if isinstance(statements, list) and statements and isinstance(
                statements[0], ast.stmt
            ):
                yield statements


def _acquire_call(stmt: ast.stmt) -> Optional[ast.Call]:
    """The ``X.acquire(...)`` call when ``stmt`` is one (expr or assign)."""
    value = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "acquire"
    ):
        return value
    return None


def _is_probe(stmt: ast.stmt) -> bool:
    """Non-blocking probe: the acquire result is assigned (the caller
    branches on it) rather than discarded."""
    if isinstance(stmt, ast.Assign):
        call = _acquire_call(stmt)
        if call is not None:
            for keyword in call.keywords:
                if keyword.arg == "blocking" and isinstance(
                    keyword.value, ast.Constant
                ):
                    return keyword.value.value is False
            if call.args and isinstance(call.args[0], ast.Constant):
                return call.args[0].value is False
    return False


def _released_in_finally(
    stmt: ast.stmt,
    statements: Sequence[ast.stmt],
    index: int,
    receiver_dump: str,
) -> bool:
    """Accept ``X.acquire()`` immediately followed by ``try/.../finally:
    X.release()``, or an acquire living inside such a try body."""

    def releases(try_node: ast.Try) -> bool:
        for final_stmt in try_node.finalbody:
            for node in ast.walk(final_stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"
                    and ast.dump(node.func.value) == receiver_dump
                ):
                    return True
        return False

    for following in statements[index + 1 :]:
        if isinstance(following, ast.Try):
            return releases(following)
        return False  # any other statement between acquire and try: leak window
    return False


#: Also accepted: the acquire sits *inside* a try whose finally releases
#: -- handled naturally because `_statement_lists` yields the try body,
#: and the enclosing Try is not visible from there.  Cover it by a
#: second pass over Try nodes:


def _acquires_inside_guarded_tries(func: ast.FunctionDef) -> List[ast.Call]:
    guarded: List[ast.Call] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.body:
            call = _acquire_call(stmt)
            if call is None:
                continue
            receiver = ast.dump(call.func.value)  # type: ignore[union-attr]
            for final_stmt in node.finalbody:
                for inner in ast.walk(final_stmt):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr == "release"
                        and ast.dump(inner.func.value) == receiver
                    ):
                        guarded.append(call)
    return guarded


def check_file(
    rel_path: str,
    source: str,
    decls: Sequence[LockDecl] = LOCK_DECLS,
    blocking: Dict[str, str] = BLOCKING_CALLS,
    tree: Optional[ast.Module] = None,
) -> Tuple[List[Finding], List[Tuple[str, str, str]]]:
    """Run LD101/LD102/LD103 over one module's source.

    Returns ``(findings, constructed_decl_keys)``.
    """
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    scan = _ModuleScan(rel_path, tree, decls, blocking)
    # Pre-compute acquires protected by an enclosing try/finally so the
    # per-statement pass can skip them.
    guarded: set = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for call in _acquires_inside_guarded_tries(node):
                guarded.add(id(call))
    scan.visit(tree)
    findings = [
        finding
        for finding in scan.findings
        if not (
            finding.code == "LD101"
            and _line_in_guarded(tree, finding.line, guarded)
        )
    ]
    return findings, scan.constructed


def _line_in_guarded(tree: ast.Module, line: int, guarded: set) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and id(node) in guarded:
            if node.lineno == line:
                return True
    return False


def run(project: Project) -> List[Finding]:
    """LD1xx over the project, plus the decl-coverage reverse check."""
    findings: List[Finding] = []
    constructed: set = set()
    for rel_path in project.python_files(*SCAN_DIRS):
        if rel_path in SCAN_EXCLUDE:
            continue
        file_findings, file_constructed = check_file(
            rel_path, project.source(rel_path), tree=project.tree(rel_path)
        )
        findings.extend(file_findings)
        constructed.update(file_constructed)
    for decl in LOCK_DECLS:
        if (decl.module, decl.cls, decl.attr) not in constructed:
            findings.append(
                Finding(
                    "LD103",
                    decl.module,
                    1,
                    f"declared lock {decl.name!r} "
                    f"({decl.cls}.{decl.attr}) is never constructed -- "
                    "stale declaration in tools/analyze/hierarchy.py",
                    key=f"never-constructed:{decl.name}",
                )
            )
    return findings
