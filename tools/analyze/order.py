"""Deadlock-hierarchy checks (LH2xx).

* **LH201** -- lexically nested ``with`` blocks on declared locks must
  acquire in strictly increasing :data:`hierarchy.LOCK_RANK` order.
  Same-name nesting is also flagged unless the lock is an rlock (a
  non-reentrant lock nested in itself is a guaranteed self-deadlock,
  and a fair rwlock read nested in a read deadlocks the moment a writer
  queues between them).
* **LH202** -- the runtime hierarchy tuple in ``repro/core/witness.py``
  must be byte-for-byte the analyzer's :data:`hierarchy.LOCK_ORDER`,
  and every declared lock name must appear in it exactly once.

LH201 is deliberately *lexical*: it catches orderings visible in a
single function body.  Cross-function orderings are the runtime
witness's job (``TAGDM_LOCK_WITNESS=1``) -- the two together are the
check; neither alone is.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from tools.analyze.core import Finding, Project
from tools.analyze.hierarchy import (
    LOCK_DECLS,
    LOCK_ORDER,
    LOCK_RANK,
    WITNESS_MODULE,
    LockDecl,
)
from tools.analyze.locks import SCAN_DIRS, SCAN_EXCLUDE, _base_attr

__all__ = ["check_file", "check_witness_module", "run"]


def _resolve(
    rel_path: str,
    cls: str,
    node: ast.expr,
    decls: Sequence[LockDecl],
) -> Optional[LockDecl]:
    base = _base_attr(node)
    if base is None:
        return None
    receiver, attr = base
    if receiver == "self":
        for decl in decls:
            if (decl.module, decl.cls, decl.attr) == (rel_path, cls, attr):
                return decl
    candidates = [
        decl for decl in decls if decl.module == rel_path and decl.attr == attr
    ]
    if len(candidates) == 1:
        return candidates[0]
    return None


class _NestingScan(ast.NodeVisitor):
    def __init__(self, rel_path: str, decls: Sequence[LockDecl]) -> None:
        self.rel_path = rel_path
        self.decls = decls
        self.findings: List[Finding] = []
        self._class_stack: List[str] = []
        self._held: List[Tuple[str, int]] = []  # (lock name, line acquired)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested def runs later, on a fresh stack -- locks held at the
        # definition site are not held at call time.
        saved, self._held = self._held, []
        self.generic_visit(node)
        self._held = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        cls = self._class_stack[-1] if self._class_stack else ""
        acquired: List[str] = []
        for item in node.items:
            decl = _resolve(self.rel_path, cls, item.context_expr, self.decls)
            if decl is None:
                continue
            self._note(decl, item.context_expr, node.lineno)
            self._held.append((decl.name, node.lineno))
            acquired.append(decl.name)
        self.generic_visit(node)
        for _ in acquired:
            self._held.pop()

    def _note(self, decl: LockDecl, expr: ast.expr, line: int) -> None:
        for held_name, held_line in self._held:
            if held_name == decl.name:
                if decl.kind == "rlock":
                    continue  # reentrant by construction
                self.findings.append(
                    Finding(
                        "LH201",
                        self.rel_path,
                        line,
                        f"lock {decl.name!r} ({decl.kind}) acquired while "
                        f"already held (outer acquire at line {held_line}) "
                        "-- self-deadlock",
                        key=f"self-nest:{decl.name}",
                    )
                )
                continue
            if LOCK_RANK.get(held_name, -1) >= LOCK_RANK.get(decl.name, -1):
                self.findings.append(
                    Finding(
                        "LH201",
                        self.rel_path,
                        line,
                        f"lock {decl.name!r} acquired while holding "
                        f"{held_name!r} (outer acquire at line {held_line}), "
                        "inverting the canonical order in "
                        "tools/analyze/hierarchy.py",
                        key=f"inversion:{held_name}->{decl.name}",
                    )
                )


def check_file(
    rel_path: str,
    source: str,
    decls: Sequence[LockDecl] = LOCK_DECLS,
    tree: Optional[ast.Module] = None,
) -> List[Finding]:
    """LH201 over one module's source."""
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    scan = _NestingScan(rel_path, decls)
    scan.visit(tree)
    return scan.findings


def check_witness_module(
    source: str,
    expected_order: Sequence[str] = LOCK_ORDER,
    rel_path: str = WITNESS_MODULE,
    tree: Optional[ast.Module] = None,
) -> List[Finding]:
    """LH202: parse the runtime module and diff its LOCK_HIERARCHY."""
    findings: List[Finding] = []
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    runtime: Optional[Tuple[str, ...]] = None
    line = 1
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "LOCK_HIERARCHY" for t in targets
        ):
            continue
        line = node.lineno
        if isinstance(value, (ast.Tuple, ast.List)) and all(
            isinstance(elt, ast.Constant) for elt in value.elts
        ):
            runtime = tuple(elt.value for elt in value.elts)
        break
    if runtime is None:
        findings.append(
            Finding(
                "LH202",
                rel_path,
                1,
                "no literal LOCK_HIERARCHY tuple found in the witness module",
                key="missing-hierarchy",
            )
        )
        return findings
    if tuple(runtime) != tuple(expected_order):
        missing = [n for n in expected_order if n not in runtime]
        extra = [n for n in runtime if n not in expected_order]
        detail = []
        if missing:
            detail.append(f"missing {missing}")
        if extra:
            detail.append(f"extra {extra}")
        if not detail:
            detail.append("same names, different order")
        findings.append(
            Finding(
                "LH202",
                rel_path,
                line,
                "runtime LOCK_HIERARCHY drifted from "
                f"tools/analyze/hierarchy.LOCK_ORDER ({'; '.join(detail)})",
                key="hierarchy-drift",
            )
        )
    return findings


def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for rel_path in project.python_files(*SCAN_DIRS):
        if rel_path in SCAN_EXCLUDE:
            continue
        findings.extend(
            check_file(
                rel_path, project.source(rel_path), tree=project.tree(rel_path)
            )
        )
    findings.extend(
        check_witness_module(
            project.source(WITNESS_MODULE), tree=project.tree(WITNESS_MODULE)
        )
    )
    # Every declared name must rank somewhere; every rank must be used.
    declared = {decl.name for decl in LOCK_DECLS}
    for name in sorted(declared - set(LOCK_ORDER)):
        findings.append(
            Finding(
                "LH202",
                "tools/analyze/hierarchy.py",
                1,
                f"declared lock {name!r} has no rank in LOCK_ORDER",
                key=f"unranked:{name}",
            )
        )
    for name in sorted(set(LOCK_ORDER) - declared):
        findings.append(
            Finding(
                "LH202",
                "tools/analyze/hierarchy.py",
                1,
                f"ranked name {name!r} has no LockDecl",
                key=f"undeclared-rank:{name}",
            )
        )
    return findings
