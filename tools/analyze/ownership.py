"""Attribute-ownership declarations for the shared-state race detector.

Every instance attribute of the serving/core concurrency classes is
assigned to exactly one **ownership domain** naming the context allowed
to write it after construction:

``init-only``
    Written during construction only (the declared ``init_methods``).
    Construction happens-before the object is published to any other
    thread, so these writes need no lock.
``lock:<name>``
    Guarded by the PR 8 lock declaration ``<name>`` (see
    ``tools/analyze/hierarchy.py``).  Every post-init write must be
    inside ``with`` on that lock (``write_locked()`` for rwlocks),
    inside a method tagged ``@locked_by("<name>")``, or under an
    ``# analyze: writer-context`` comment arguing single-writer-ness.
``confined:<label>``
    Single-writer confined: only the methods listed under ``<label>``
    in ``confined_writers`` may write (e.g. lifecycle ``start``/``stop``
    called from the owning thread, or a dedicated worker loop).
``frozen-after-publish``
    Immutable once ``__init__`` returns -- the static half of the
    publication contract the runtime sanitizer
    (``repro.core.sanitizer``) enforces under ``TAGDM_STATE_SANITIZER``.

Declarations live here for the serving tree; classes may instead (or
additionally) carry an ``@owned_by(attr="domain", ...)`` decorator
(``SessionView`` does, exercising that path), and a single write site
can declare its attribute inline with ``# analyze: owner=<domain>``.

The detector (``tools/analyze/races.py``) errors on *undeclared*
attributes of a declared class, not just on bad writes: the table below
must stay complete as classes grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

__all__ = ["OWNERSHIP_DECLS", "OwnershipDecl", "VALID_DOMAIN_PREFIXES"]

VALID_DOMAIN_PREFIXES = ("init-only", "frozen-after-publish", "lock:", "confined:")


@dataclass(frozen=True)
class OwnershipDecl:
    """Complete attribute->domain map for one concurrency class."""

    module: str  # repo-relative path
    cls: str
    attrs: Mapping[str, str]  # attr name -> ownership domain
    #: Methods whose writes are construction (always allowed): the
    #: object is not yet published while these run.
    init_methods: Tuple[str, ...] = ("__init__",)
    #: ``confined:<label>`` domains -> the methods allowed to write.
    confined_writers: Mapping[str, Tuple[str, ...]] = field(
        default_factory=dict
    )


OWNERSHIP_DECLS: Tuple[OwnershipDecl, ...] = (
    OwnershipDecl(
        module="src/repro/serving/shards.py",
        cls="CorpusShard",
        attrs={
            # Configuration, locks and worker threads: wired once in
            # __init__, read-only afterwards.
            "name": "init-only",
            "session": "init-only",
            "rotator": "init-only",
            "evaluator": "init-only",
            "admission": "init-only",
            "merge_policy": "init-only",
            "fault_plan": "init-only",
            "start_mode": "init-only",
            "replayed_actions": "init-only",
            "_lock": "init-only",
            "_maintenance_lock": "init-only",
            "_queue": "init-only",
            "_closed": "init-only",
            "_submit_lock": "init-only",
            "_stats_lock": "init-only",
            "_writer": "init-only",
            "_merge_stop": "init-only",
            "_merger": "init-only",
            # The merge wakeup event is set from anywhere (Events are
            # thread-safe) but only the merger loop clears it.
            "_merge_wakeup": "confined:merger",
            # Counters, error strings and the published-view pointer:
            # every post-init touch holds the stats lock.
            "_inserts_served": "lock:shard.stats",
            "_solves_served": "lock:shard.stats",
            "_inflight_solves": "lock:shard.stats",
            "_inserts_shed": "lock:shard.stats",
            "_solves_shed": "lock:shard.stats",
            "_dedup_hits": "lock:shard.stats",
            "_merge_count": "lock:shard.stats",
            "_merge_failures": "lock:shard.stats",
            "_first_delta_at": "lock:shard.stats",
            "_last_rotation_error": "lock:shard.stats",
            "_last_merge_error": "lock:shard.stats",
            "_view": "lock:shard.stats",
            "_next_epoch": "lock:shard.stats",
            "_pins": "lock:shard.stats",
        },
        confined_writers={"merger": ("_merge_loop",)},
    ),
    OwnershipDecl(
        module="src/repro/serving/server.py",
        cls="TagDMServer",
        attrs={
            "root": "init-only",
            "policy": "init-only",
            "enumeration": "init-only",
            "signature_backend": "init-only",
            "signature_dimensions": "init-only",
            "seed": "init-only",
            "admission": "init-only",
            "merge_policy": "init-only",
            "fault_plan": "init-only",
            "_registry_lock": "init-only",
            "_shards": "lock:server.registry",
            "_stores": "lock:server.registry",
            "_evaluators": "lock:server.registry",
            "_closed": "lock:server.registry",
        },
    ),
    OwnershipDecl(
        module="src/repro/serving/subscriptions.py",
        cls="SubscriptionEvaluator",
        attrs={
            "corpus": "init-only",
            "store": "init-only",
            "fault_plan": "init-only",
            "retry_interval": "init-only",
            "_lock": "init-only",
            "_stop": "init-only",
            "_thread": "init-only",
            # The wakeup event is set from anywhere (Events are
            # thread-safe) but only the evaluator loop clears it.
            "_wakeup": "confined:loop",
            # Pending-view queue and delivery counters: every post-init
            # touch holds the evaluator's state lock.
            "_pending_view": "lock:subs.state",
            "_evaluating": "lock:subs.state",
            "_active": "lock:subs.state",
            "_evaluations": "lock:subs.state",
            "_notifications": "lock:subs.state",
            "_suppressed": "lock:subs.state",
            "_last_error": "lock:subs.state",
            "_notified_watermark": "lock:subs.state",
            "_completed_watermark": "lock:subs.state",
        },
        confined_writers={"loop": ("_loop",)},
    ),
    OwnershipDecl(
        module="src/repro/serving/router.py",
        cls="PlacementTable",
        attrs={
            "_lock": "init-only",
            "_workers": "lock:placement.table",
            "_corpora": "lock:placement.table",
            "_pins": "lock:placement.table",
        },
    ),
    OwnershipDecl(
        module="src/repro/serving/router.py",
        cls="TagDMRouter",
        attrs={
            "placement": "init-only",
            "_resolve": "init-only",
            "retry_deadline": "init-only",
            "retry_interval": "init-only",
            "request_timeout": "init-only",
            "retry_budget": "init-only",
            "breaker_failure_threshold": "init-only",
            "breaker_reset_timeout": "init-only",
            "heartbeat_interval": "init-only",
            "_breakers_lock": "init-only",
            "_pools_lock": "init-only",
            "_stats_lock": "init-only",
            "_httpd": "init-only",
            "_breakers": "lock:router.breakers",
            "_pools": "lock:router.pools",
            "_forwarded": "lock:router.stats",
            "_retries": "lock:router.stats",
            "_unavailable": "lock:router.stats",
            "_budget_exhausted": "lock:router.stats",
            "_heartbeat_probes": "lock:router.stats",
            # Thread handles and the stop event belong to the lifecycle
            # methods, which the owner calls from one thread.
            "_thread": "confined:lifecycle",
            "_heartbeat_thread": "confined:lifecycle",
            "_heartbeat_stop": "confined:lifecycle",
        },
        confined_writers={"lifecycle": ("start", "stop")},
    ),
    OwnershipDecl(
        module="src/repro/core/incremental.py",
        cls="IncrementalTagDM",
        attrs={
            "store": "init-only",
            # The live session and the delta-tracking maps: externally
            # synchronized by the shard's exclusive merge lock (the WR4xx
            # contract on the mutator methods).
            "session": "lock:shard.merge",
            "_pending": "lock:shard.merge",
            "_group_index": "lock:shard.merge",
            # Listener registration is construction-time wiring (the
            # shard registers its WAL hook before any writer starts).
            "_mutation_listeners": "confined:wiring",
        },
        init_methods=("__init__", "prepare", "_seed_pending_from_dataset"),
        confined_writers={"wiring": ("add_mutation_listener",)},
    ),
    OwnershipDecl(
        module="src/repro/dataset/sqlite_store.py",
        cls="SqliteTaggingStore",
        attrs={
            "path": "init-only",
            "_lock": "init-only",
            "_defer_depth": "lock:store.lock",
            "_connection": "lock:store.lock",
        },
    ),
    OwnershipDecl(
        module="src/repro/serving/reliability.py",
        cls="CircuitBreaker",
        attrs={
            "failure_threshold": "init-only",
            "reset_timeout": "init-only",
            "_clock": "init-only",
            "_lock": "init-only",
            "_state": "lock:breaker.state",
            "_consecutive_failures": "lock:breaker.state",
            "_opened_at": "lock:breaker.state",
            "_last_probe_at": "lock:breaker.state",
            "times_opened": "lock:breaker.state",
        },
    ),
    OwnershipDecl(
        module="src/repro/serving/reliability.py",
        cls="RetryBudget",
        attrs={
            "max_attempts": "init-only",
            "backoff_base": "init-only",
            "backoff_cap": "init-only",
            "jitter": "init-only",
            "_rng": "init-only",
            "_lock": "init-only",
        },
    ),
    OwnershipDecl(
        module="src/repro/serving/reliability.py",
        cls="FaultPlan",
        attrs={
            "rules": "init-only",
            "seed": "init-only",
            "state_dir": "init-only",
            "_lock": "init-only",
            "_rng": "init-only",
            "_arrivals": "lock:faultplan.state",
            "_fired_counts": "lock:faultplan.state",
            "fired": "lock:faultplan.state",
        },
        # __setstate__ re-runs construction on unpickle; _init_runtime is
        # the shared tail both entry points call.
        init_methods=("__init__", "_init_runtime", "__setstate__"),
    ),
)


def decl_index() -> Dict[Tuple[str, str], OwnershipDecl]:
    """Declarations keyed by ``(module, cls)``."""
    return {(d.module, d.cls): d for d in OWNERSHIP_DECLS}
