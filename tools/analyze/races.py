"""Shared-state race detection (RC5xx) over the AST.

Every instance attribute of a declared concurrency class (the
``tools/analyze/ownership.py`` table plus any class carrying an
``@owned_by(...)`` decorator) belongs to an ownership domain; this
checker flags writes that escape their domain:

* **RC501** -- a write to an attribute with *no* ownership declaration.
  Completeness is the point: the table must name every attribute, so a
  new field cannot silently join a shared class unclassified.
* **RC502** -- an attribute store / ``del`` / rebind outside the
  domain's writer context (post-init write to ``init-only`` or
  ``frozen-after-publish`` state; a ``lock:<name>`` write without the
  lock; a ``confined:<label>`` write from a non-confined method).
* **RC503** -- a *container or nested-object* mutation outside the
  domain (``self.X[...] = ...``, ``self.X.append(...)``,
  ``self.X.Y = ...``); same context rules as RC502.
* **RC504** -- mutation of state reached through a published view
  (receivers named ``view`` / ``*_view``) anywhere in the scanned tree:
  the static half of the publication sanitizer.
* **RC505** -- a stale declaration: a declared attribute the class
  never writes (or a declared class the module no longer defines).

Writer contexts reuse the PR 8 machinery: a lexical ``with`` on the
declared lock (``write_locked()`` for rwlocks; ``read_locked()`` never
grants write access), an enclosing ``@locked_by("<name>")`` decorator,
or an ``# analyze: writer-context`` comment.  A write site may also
declare its attribute inline with ``# analyze: owner=<domain>``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Tuple

from tools.analyze.core import Finding, Project
from tools.analyze.hierarchy import LOCK_DECLS, LockDecl
from tools.analyze.locks import SCAN_DIRS, SCAN_EXCLUDE, _base_attr, _receiver_text
from tools.analyze.ownership import (
    OWNERSHIP_DECLS,
    OwnershipDecl,
    VALID_DOMAIN_PREFIXES,
)
from tools.analyze.writers import WRITER_MARKER, _locked_by_names

__all__ = [
    "MUTATOR_METHODS",
    "OWNER_MARKER",
    "RACES_EXCLUDE",
    "check_file",
    "run",
]

#: The sanitizer module is the runtime enforcement machinery itself --
#: its ``seal_view`` legitimately rebinds ``view.groups`` to install the
#: raise-on-write proxy.
RACES_EXCLUDE = SCAN_EXCLUDE + ("src/repro/core/sanitizer.py",)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "update",
        "setdefault", "popitem", "add", "discard", "sort", "reverse",
    }
)

OWNER_MARKER = "# analyze: owner="
_OWNER_RE = re.compile(r"#\s*analyze:\s*owner=([A-Za-z0-9_.:-]+)")


def _valid_domain(domain: str) -> bool:
    return domain in ("init-only", "frozen-after-publish") or any(
        domain.startswith(prefix) and len(domain) > len(prefix)
        for prefix in VALID_DOMAIN_PREFIXES
        if prefix.endswith(":")
    )


def _decorator_domains(node: ast.ClassDef) -> Dict[str, str]:
    """The attr->domain map from an ``@owned_by(...)`` class decorator."""
    domains: Dict[str, str] = {}
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, ast.Name)
            and decorator.func.id == "owned_by"
        ):
            for keyword in decorator.keywords:
                if keyword.arg and isinstance(keyword.value, ast.Constant):
                    domains[keyword.arg] = keyword.value.value
    return domains


def _self_root_attr(node: ast.expr) -> Optional[str]:
    """The first attribute after ``self`` in an access chain, or None.

    ``self.session.groups[0]`` -> ``session``; ``view.groups`` -> None.
    A call in the chain (``self.shard(name).insert(...)``) ends the
    walk: the receiver is a method's *return value*, not attribute
    state, and method names legitimately collide with container
    mutators (``insert``, ``update``...).
    """
    chain: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        else:
            node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


class _Write:
    __slots__ = ("attr", "line", "kind", "detail")

    def __init__(self, attr: str, line: int, kind: str, detail: str) -> None:
        self.attr = attr
        self.line = line
        self.kind = kind  # "store" (RC502 shape) or "mutate" (RC503 shape)
        self.detail = detail


class _ClassScan(ast.NodeVisitor):
    """Collect every ``self``-rooted write inside one declared class."""

    def __init__(self, lines: Sequence[str]) -> None:
        self.lines = lines
        #: (write, enclosing function name, lock labels held, enclosing
        #: function node) -- contexts reset at nested function defs,
        #: because closures may run on other threads.
        self.writes: List[Tuple[_Write, str, Tuple[str, ...], Optional[ast.FunctionDef]]] = []
        self._func_stack: List[ast.FunctionDef] = []
        self._with_labels: List[str] = []
        self._lock_by_key = {
            (d.module, d.cls, d.attr): d for d in LOCK_DECLS
        }
        self._lock_by_attr: Dict[str, List[LockDecl]] = {}
        for decl in LOCK_DECLS:
            self._lock_by_attr.setdefault(decl.attr, []).append(decl)
        self.rel_path = ""
        self.cls_name = ""

    # -- lock resolution -----------------------------------------------
    def _resolve_lock(self, node: ast.expr) -> Optional[LockDecl]:
        base = _base_attr(node)
        if base is None:
            return None
        receiver, attr = base
        if receiver == "self":
            decl = self._lock_by_key.get((self.rel_path, self.cls_name, attr))
            if decl is not None:
                return decl
        candidates = self._lock_by_attr.get(attr, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _with_label(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "write_locked",
                "read_locked",
            ):
                if func.attr == "read_locked":
                    return None  # shared hold: never a writer context
                decl = self._resolve_lock(func.value)
                return decl.name if decl is not None else None
            return None  # other context managers are not lock holds
        decl = self._resolve_lock(expr)
        return decl.name if decl is not None else None

    # -- context tracking ----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node)
        saved, self._with_labels = self._with_labels, []
        self.generic_visit(node)
        self._with_labels = saved
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # nested classes have their own scan

    def visit_With(self, node: ast.With) -> None:
        labels = [
            label
            for item in node.items
            if (label := self._with_label(item.context_expr)) is not None
        ]
        self._with_labels.extend(labels)
        self.generic_visit(node)
        for _ in labels:
            self._with_labels.pop()

    def _record(self, attr: str, line: int, kind: str, detail: str) -> None:
        func = self._func_stack[-1] if self._func_stack else None
        name = func.name if func is not None else "<class body>"
        self.writes.append(
            (_Write(attr, line, kind, detail), name, tuple(self._with_labels), func)
        )

    # -- write events ---------------------------------------------------
    def _record_target(self, target: ast.expr, line: int, deleting: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, line, deleting)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, line, deleting)
            return
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                verb = "del of" if deleting else "store to"
                self._record(target.attr, line, "store", f"{verb} self.{target.attr}")
                return
            attr = _self_root_attr(target.value)
            if attr is not None:
                self._record(
                    attr, line, "mutate",
                    f"nested store self.{attr}...{target.attr} =",
                )
            return
        if isinstance(target, ast.Subscript):
            attr = _self_root_attr(target.value)
            if attr is not None:
                verb = "del" if deleting else "store"
                self._record(
                    attr, line, "mutate", f"subscript {verb} on self.{attr}[...]"
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node.lineno, deleting=False)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node.lineno, deleting=False)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node.lineno, deleting=False)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, node.lineno, deleting=True)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            attr = _self_root_attr(func.value)
            if attr is not None:
                receiver = _receiver_text(func.value)
                self._record(
                    attr, node.lineno, "mutate", f"{receiver}.{func.attr}()"
                )
        self.generic_visit(node)


def _marker_before(
    lines: Sequence[str], func: Optional[ast.FunctionDef], line: int, marker: str
) -> bool:
    start = func.lineno if func is not None else line
    for number in range(start, min(line + 1, len(lines) + 1)):
        if marker in lines[number - 1]:
            return True
    return False


def _inline_owner(lines: Sequence[str], line: int) -> Optional[str]:
    for number in (line, line - 1):
        if 1 <= number <= len(lines):
            match = _OWNER_RE.search(lines[number - 1])
            if match:
                return match.group(1)
    return None


class _ViewMutationScan(ast.NodeVisitor):
    """RC504: writes reached through a published-view receiver."""

    def __init__(self, rel_path: str) -> None:
        self.rel_path = rel_path
        self.findings: List[Finding] = []

    @staticmethod
    def _view_chain(node: ast.expr) -> Optional[str]:
        text = _receiver_text(node)
        if not text:
            return None
        parts = text.split(".")
        if parts[0] in ("self", "cls"):
            return None  # instance state: covered by the class-domain scan
        for part in parts:
            name = part[:-2] if part.endswith("()") else part
            if name == "view" or name.endswith("_view"):
                return text
        return None

    def _flag(self, node: ast.expr, line: int, what: str) -> None:
        chain = self._view_chain(node)
        if chain is None:
            return
        self.findings.append(
            Finding(
                "RC504", self.rel_path, line,
                f"{what} reaches state published through view {chain!r}: a "
                "frozen SessionView (and everything hanging off it) is "
                "immutable after freeze() -- mutate the live session under "
                "the merge lock and publish a new epoch",
                key=f"view-mutation:{chain}:{what.split(' ')[0]}",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                self._flag(target.value, node.lineno, f"store to .{target.attr}")
            elif isinstance(target, ast.Subscript):
                self._flag(target.value, node.lineno, "subscript store")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            self._flag(node.target.value, node.lineno, f"store to .{node.target.attr}")
        elif isinstance(node.target, ast.Subscript):
            self._flag(node.target.value, node.lineno, "subscript store")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._flag(target.value, node.lineno, "del")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            self._flag(func.value, node.lineno, f"mutator .{func.attr}()")
        self.generic_visit(node)


def _check_class(
    rel_path: str,
    cls_node: ast.ClassDef,
    decl: Optional[OwnershipDecl],
    lines: Sequence[str],
) -> List[Finding]:
    findings: List[Finding] = []
    cls_name = cls_node.name
    attrs: Dict[str, str] = dict(decl.attrs) if decl is not None else {}
    attrs.update(_decorator_domains(cls_node))
    init_methods = decl.init_methods if decl is not None else ("__init__",)
    confined = dict(decl.confined_writers) if decl is not None else {}

    for attr, domain in sorted(attrs.items()):
        if not _valid_domain(domain):
            findings.append(
                Finding(
                    "RC501", rel_path, cls_node.lineno,
                    f"{cls_name}.{attr} declares unknown ownership domain "
                    f"{domain!r} (expected init-only, frozen-after-publish, "
                    "lock:<name> or confined:<label>)",
                    key=f"bad-domain:{cls_name}.{attr}",
                )
            )

    scan = _ClassScan(lines)
    scan.rel_path = rel_path
    scan.cls_name = cls_name
    for item in cls_node.body:
        scan.visit(item)

    written = {write.attr for write, _, _, _ in scan.writes}

    for write, method, held, func in scan.writes:
        domain = _inline_owner(lines, write.line) or attrs.get(write.attr)
        if domain is None:
            findings.append(
                Finding(
                    "RC501", rel_path, write.line,
                    f"{cls_name}.{write.attr} has no ownership declaration "
                    f"({write.detail} in {method}); add it to "
                    "tools/analyze/ownership.py, to the class's @owned_by "
                    f"decorator, or declare inline with '{OWNER_MARKER}...'",
                    key=f"undeclared:{cls_name}.{write.attr}",
                )
            )
            continue
        if method in init_methods:
            continue  # construction happens-before publication
        code = "RC502" if write.kind == "store" else "RC503"
        if domain == "init-only":
            findings.append(
                Finding(
                    code, rel_path, write.line,
                    f"{cls_name}.{write.attr} is init-only but {method} "
                    f"writes it after construction ({write.detail})",
                    key=f"post-init:{cls_name}.{write.attr}:{method}",
                )
            )
        elif domain == "frozen-after-publish":
            findings.append(
                Finding(
                    code, rel_path, write.line,
                    f"{cls_name}.{write.attr} is frozen after publication "
                    f"but {method} mutates it ({write.detail}); published "
                    "state is immutable -- build a replacement and publish "
                    "a new epoch",
                    key=f"post-publish:{cls_name}.{write.attr}:{method}",
                )
            )
        elif domain.startswith("lock:"):
            lock_name = domain[len("lock:"):]
            if lock_name in held:
                continue
            if func is not None and lock_name in _locked_by_names(func):
                continue
            if _marker_before(lines, func, write.line, WRITER_MARKER):
                continue
            findings.append(
                Finding(
                    code, rel_path, write.line,
                    f"{cls_name}.{write.attr} is guarded by {lock_name!r} "
                    f"but {method} writes it without the lock "
                    f"({write.detail}); wrap the write in the lock, tag the "
                    f"method @locked_by({lock_name!r}), or add an "
                    f"'{WRITER_MARKER}' comment",
                    key=f"unlocked:{cls_name}.{write.attr}:{method}",
                )
            )
        elif domain.startswith("confined:"):
            label = domain[len("confined:"):]
            allowed = confined.get(label, ())
            if method in allowed:
                continue
            if _marker_before(lines, func, write.line, WRITER_MARKER):
                continue
            findings.append(
                Finding(
                    code, rel_path, write.line,
                    f"{cls_name}.{write.attr} is confined to "
                    f"{', '.join(allowed) or 'no declared writers'} "
                    f"({domain}) but {method} writes it ({write.detail})",
                    key=f"unconfined:{cls_name}.{write.attr}:{method}",
                )
            )

    for attr in sorted(attrs):
        if attr not in written:
            findings.append(
                Finding(
                    "RC505", rel_path, cls_node.lineno,
                    f"declared attribute {cls_name}.{attr} is never written "
                    "in the class -- stale ownership declaration",
                    key=f"stale-attr:{cls_name}.{attr}",
                )
            )
    return findings


def check_file(
    rel_path: str,
    source: str,
    decls: Sequence[OwnershipDecl] = OWNERSHIP_DECLS,
    tree: Optional[ast.Module] = None,
) -> List[Finding]:
    """RC5xx over one module.  Fixture tests pass synthetic sources."""
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    lines = source.splitlines()
    findings: List[Finding] = []
    by_name = {d.cls: d for d in decls if d.module == rel_path}
    seen: set = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        decl = by_name.get(node.name)
        if decl is None and not _decorator_domains(node):
            continue
        seen.add(node.name)
        findings.extend(_check_class(rel_path, node, decl, lines))
    for name, decl in sorted(by_name.items()):
        if name not in seen:
            findings.append(
                Finding(
                    "RC505", rel_path, 1,
                    f"declared class {name} not found in {rel_path} -- "
                    "stale ownership declaration",
                    key=f"stale-class:{name}",
                )
            )
    view_scan = _ViewMutationScan(rel_path)
    view_scan.visit(tree)
    findings.extend(view_scan.findings)
    return findings


def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for rel_path in project.python_files(*SCAN_DIRS):
        if rel_path in RACES_EXCLUDE:
            continue
        findings.extend(
            check_file(
                rel_path, project.source(rel_path), tree=project.tree(rel_path)
            )
        )
    return findings
