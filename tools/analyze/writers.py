"""Concurrency-API hygiene checks (WR4xx).

The mutating surface of the two stateful cores is small and must stay
explicitly annotated:

* ``IncrementalTagDM`` mutators are **externally synchronized**: the
  caller must hold the shard's exclusive merge lock (or be a declared
  single-writer context).  Each mutator carries
  ``@locked_by("shard.merge")`` (WR401) and every call site in src must
  be inside a ``write_locked()`` block, inside a function itself tagged
  ``@locked_by``, or under an ``# analyze: writer-context`` comment
  explaining why no lock is needed (WR402).
* ``SqliteTaggingStore`` mutators are **self-guarded monitors**: each
  carries ``@locked_by("store.lock")`` (WR401) and its body must
  actually take ``with self._lock:`` (WR403).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.analyze.core import Finding, Project
from tools.analyze.locks import SCAN_DIRS, SCAN_EXCLUDE, _base_attr, _receiver_text

__all__ = [
    "SESSION_MUTATORS",
    "STORE_MUTATORS",
    "WRITER_MARKER",
    "check_call_sites",
    "check_mutator_defs",
    "run",
]

#: Externally-synchronized mutators: class, module, required lock.
SESSION_MUTATORS: Dict[str, str] = {
    "add_action": "shard.merge",
    "add_actions": "shard.merge",
    "refresh_topic_model": "shard.merge",
}
SESSION_CLASS = ("src/repro/core/incremental.py", "IncrementalTagDM")

#: Self-guarded monitor mutators: every body takes the store lock.
STORE_MUTATORS: Tuple[str, ...] = (
    "register_user",
    "register_item",
    "add_action",
    "append_action",
    "record_request",
    "ingest",
    "sync_action_attrs",
)
STORE_CLASS = ("src/repro/dataset/sqlite_store.py", "SqliteTaggingStore")
STORE_LOCK = "store.lock"

#: The annotation that marks a call site as a declared single-writer
#: context.  Must appear in the enclosing function, before the call.
WRITER_MARKER = "# analyze: writer-context"

#: Session-mutator call sites are only flagged when the receiver looks
#: like a session (``TaggingDataset.add_action`` and the store's
#: ``add_action`` share names with the session mutators).
_SESSION_RECEIVER_HINT = "session"


def _locked_by_names(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for decorator in func.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, ast.Name)
            and decorator.func.id == "locked_by"
        ):
            for arg in decorator.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    names.add(arg.value)
    return names


def _class_methods(
    tree: ast.Module, cls_name: str
) -> Dict[str, ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls_name:
            return {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
    return {}


def check_mutator_defs(
    session_source: str,
    store_source: str,
    session_path: str = SESSION_CLASS[0],
    store_path: str = STORE_CLASS[0],
    session_tree: Optional[ast.Module] = None,
    store_tree: Optional[ast.Module] = None,
) -> List[Finding]:
    """WR401 over both mutator surfaces, WR403 over the store."""
    findings: List[Finding] = []

    if session_tree is None:
        session_tree = ast.parse(session_source, filename=session_path)
    if store_tree is None:
        store_tree = ast.parse(store_source, filename=store_path)
    methods = _class_methods(session_tree, SESSION_CLASS[1])
    for name, required in sorted(SESSION_MUTATORS.items()):
        func = methods.get(name)
        if func is None:
            findings.append(
                Finding(
                    "WR401", session_path, 1,
                    f"declared mutator {SESSION_CLASS[1]}.{name} not found",
                    key=f"missing-mutator:{name}",
                )
            )
            continue
        if required not in _locked_by_names(func):
            findings.append(
                Finding(
                    "WR401", session_path, func.lineno,
                    f"{SESSION_CLASS[1]}.{name} mutates session state but "
                    f"is not annotated @locked_by({required!r})",
                    key=f"unannotated:{SESSION_CLASS[1]}.{name}",
                )
            )

    methods = _class_methods(store_tree, STORE_CLASS[1])
    for name in STORE_MUTATORS:
        func = methods.get(name)
        if func is None:
            findings.append(
                Finding(
                    "WR401", store_path, 1,
                    f"declared mutator {STORE_CLASS[1]}.{name} not found",
                    key=f"missing-mutator:{name}",
                )
            )
            continue
        if STORE_LOCK not in _locked_by_names(func):
            findings.append(
                Finding(
                    "WR401", store_path, func.lineno,
                    f"{STORE_CLASS[1]}.{name} mutates store state but is "
                    f"not annotated @locked_by({STORE_LOCK!r})",
                    key=f"unannotated:{STORE_CLASS[1]}.{name}",
                )
            )
            continue
        if not _takes_own_lock(func):
            findings.append(
                Finding(
                    "WR403", store_path, func.lineno,
                    f"{STORE_CLASS[1]}.{name} is a self-guarded monitor "
                    "method but its body never takes `with self._lock:`",
                    key=f"unguarded-body:{name}",
                )
            )
    return findings


def _takes_own_lock(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.With):
            for item in node.items:
                base = _base_attr(item.context_expr)
                if base == ("self", "_lock"):
                    return True
    return False


class _CallSiteScan(ast.NodeVisitor):
    """WR402: session-mutator calls outside a declared writer context."""

    def __init__(self, rel_path: str, source: str) -> None:
        self.rel_path = rel_path
        self.lines = source.splitlines()
        self.findings: List[Finding] = []
        self._with_contexts: List[str] = []
        self._func_stack: List[ast.FunctionDef] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node)
        saved, self._with_contexts = self._with_contexts, []
        self.generic_visit(node)
        self._with_contexts = saved
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        labels: List[str] = []
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
                if expr.func.attr in ("write_locked", "read_locked"):
                    # an rwlock hold; exclusive side satisfies shard.merge
                    if expr.func.attr == "write_locked":
                        labels.append("shard.merge")
                    continue
            base = _base_attr(expr)
            if base is not None:
                labels.append(f"attr:{base[1]}")
        self._with_contexts.extend(labels)
        self.generic_visit(node)
        for _ in labels:
            self._with_contexts.pop()

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        if not isinstance(node.func, ast.Attribute):
            return
        name = node.func.attr
        required = SESSION_MUTATORS.get(name)
        if required is None:
            return
        receiver = _receiver_text(node.func.value).lower()
        if _SESSION_RECEIVER_HINT not in receiver:
            return
        if required in self._with_contexts:
            return
        enclosing = self._func_stack[-1] if self._func_stack else None
        if enclosing is not None:
            if required in _locked_by_names(enclosing):
                return
            if self._marker_before(enclosing, node.lineno):
                return
        self.findings.append(
            Finding(
                "WR402", self.rel_path, node.lineno,
                f"{_receiver_text(node.func.value)}.{name}() mutates the "
                f"session without holding {required!r}: wrap it in the "
                "shard's write_locked() block, tag the enclosing function "
                f"@locked_by({required!r}), or add an "
                f"'{WRITER_MARKER}' comment explaining the single-writer "
                "argument",
                key=f"unsynchronized:{name}",
            )
        )

    def _marker_before(self, func: ast.FunctionDef, line: int) -> bool:
        start = func.lineno
        for number in range(start, min(line, len(self.lines) + 1)):
            if WRITER_MARKER in self.lines[number - 1]:
                return True
        return False


def check_call_sites(
    rel_path: str, source: str, tree: Optional[ast.Module] = None
) -> List[Finding]:
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    scan = _CallSiteScan(rel_path, source)
    scan.visit(tree)
    return scan.findings


def run(project: Project) -> List[Finding]:
    findings = check_mutator_defs(
        project.source(SESSION_CLASS[0]),
        project.source(STORE_CLASS[0]),
        session_tree=project.tree(SESSION_CLASS[0]),
        store_tree=project.tree(STORE_CLASS[0]),
    )
    for rel_path in project.python_files(*SCAN_DIRS):
        if rel_path in SCAN_EXCLUDE or rel_path == SESSION_CLASS[0]:
            continue
        findings.extend(
            check_call_sites(
                rel_path, project.source(rel_path), tree=project.tree(rel_path)
            )
        )
    return findings
