"""Fail CI when a top-level markdown file links to a missing file.

Scans every ``*.md`` in the repository root for inline markdown links
``[text](target)`` and checks that each *relative* target exists on
disk (anchors stripped).  External links (``http://``, ``https://``,
``mailto:``) and pure in-page anchors (``#section``) are not checked --
this is a docs-integrity gate, not a crawler.

Run with::

    python tools/check_doc_links.py            # repo root inferred
    python tools/check_doc_links.py --root .   # explicit root

Exit code 0 when every link resolves, 1 with a listing of the broken
ones otherwise.
"""

from __future__ import annotations

import argparse
import re
import sys
import urllib.parse
from pathlib import Path

#: Inline markdown links; deliberately simple (no nested parens in our docs).
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def iter_links(text: str):
    """Yield every inline-link target in ``text``."""
    for match in _LINK.finditer(text):
        yield match.group(1)


def check_file(markdown_path: Path, root: Path):
    """Yield ``(target, resolved_path)`` for each broken link in one file."""
    for target in iter_links(markdown_path.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL_SCHEMES):
            continue
        path_part, _, _anchor = target.partition("#")
        if not path_part:
            continue  # pure in-page anchor
        resolved = (markdown_path.parent / urllib.parse.unquote(path_part)).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            yield target, resolved  # escapes the repo: always broken
            continue
        if not resolved.exists():
            yield target, resolved


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root holding the top-level *.md files",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    markdown_files = sorted(root.glob("*.md"))
    if not markdown_files:
        print(f"no top-level *.md files under {root}", file=sys.stderr)
        return 1

    broken = []
    checked = 0
    for markdown_path in markdown_files:
        for target, resolved in check_file(markdown_path, root):
            broken.append((markdown_path.name, target, resolved))
        checked += 1

    if broken:
        print(f"{len(broken)} broken link(s) across {checked} file(s):")
        for source, target, resolved in broken:
            print(f"  {source}: ({target}) -> missing {resolved}")
        return 1
    print(f"all relative links resolve across {checked} top-level markdown files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
