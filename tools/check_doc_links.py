"""Back-compat shim: the doc-link check now lives in the analysis
suite (``python -m tools.analyze --check doclinks``, codes DL501/DL502;
see TOOLING.md).  This wrapper keeps the old entry point working for
scripts and muscle memory.

Run with::

    python tools/check_doc_links.py            # repo root inferred
    python tools/check_doc_links.py --root .   # explicit root
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))


def main(argv=None) -> int:
    warnings.warn(
        "tools/check_doc_links.py is deprecated; run "
        "`python -m tools.analyze --check doclinks` instead",
        DeprecationWarning,
        stacklevel=2,
    )
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=_REPO_ROOT,
        help="repository root holding the top-level *.md files",
    )
    args = parser.parse_args(argv)

    from tools.analyze.cli import main as analyze_main

    return analyze_main(["--check", "doclinks", "--root", str(args.root)])


if __name__ == "__main__":
    raise SystemExit(main())
